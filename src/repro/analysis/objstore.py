"""S3-style object-store backend for the experiment cache.

:class:`~repro.analysis.cache.LocalFSStore` needs every fleet machine to
mount one directory; this module removes that requirement.
:class:`ObjectStore` implements the :class:`~repro.analysis.cache.CacheStore`
interface over a minimal S3-style HTTP API — objects under ``bucket/key``,
ETag-conditional puts, paginated listings — so
``repro.analysis.distrib`` fleets can span machines whose only shared
substrate is a network endpoint.

The wire protocol is the S3 *model* without the S3 *ceremony* (no
signatures, no XML): exactly the subset the cache's contract needs, spoken
with nothing but the standard library.

==========================  ==============================================
request                     meaning
==========================  ==============================================
``GET /b/k``                fetch object ``k`` of bucket ``b`` (``ETag``
                            header; 404 when absent)
``HEAD /b/k``               existence/size/ETag probe without the payload
``PUT /b/k``                store the request body; the conditional
                            headers carry the cache's two write
                            primitives: ``If-None-Match: *`` = create
                            exclusively (412 when the key exists),
                            ``If-Match: <etag>`` = compare-and-swap
                            against the live ETag (412 on mismatch, 404
                            when absent)
``DELETE /b/k``             remove the object (404 when absent)
``GET /b?list&prefix=…``    page of keys: ``max-keys`` bounds the page,
                            ``start-after`` resumes after a key; the JSON
                            body reports ``truncated`` so clients page
                            until exhausted
==========================  ==============================================

ETags are hex MD5 of the object bytes (what S3 computes for single-part
puts), so conditional semantics agree exactly with the filesystem
backend's :func:`~repro.analysis.cache.object_etag`.

:class:`FakeObjectServer` is an in-process implementation of that
protocol (a threaded stdlib HTTP server over an in-memory dict), so the
selftests, the test suite and CI exercise the full client/server path —
including subprocess fleet workers talking to it over real sockets —
without cloud credentials or third-party packages.  Conditional puts are
evaluated under one server-side lock, giving the genuine atomic
compare-and-swap the lease protocol is specified against.

Command line::

    python -m repro.analysis.objstore --serve [--host H] [--port P]
    python -m repro.analysis.objstore --selftest

``--serve`` runs a standalone server (e.g. to back
``pytest benchmarks --runner-cache-backend obj:http://HOST:PORT/bench``
or a ``distrib worker --root http://HOST:PORT/fleet`` fleet on one
network); ``--selftest`` checks CRUD, both conditional-put primitives,
pagination and concurrent compare-and-swap exclusivity.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cache import (
    CacheStore,
    ObjectInfo,
    StoredObject,
    object_etag,
)
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "FakeObjectServer",
    "ObjectStore",
    "ObjectStoreError",
]

#: Keys per listing page the client requests (and the server caps at).
DEFAULT_PAGE_SIZE = 1000


class ObjectStoreError(OSError):
    """The endpoint misbehaved: unreachable, or an unexpected status.

    An :class:`OSError` subclass so callers that already tolerate
    filesystem faults (the distrib worker's payload loading, for one)
    treat a flaky endpoint the same way.
    """


# repro: allow[R4] -- must never ride a payload: workers rebuild stores
# from the root URL, and the lock makes accidental capture fail loudly
class ObjectStore(CacheStore):
    """A :class:`~repro.analysis.cache.CacheStore` over the HTTP protocol
    above.

    Parameters
    ----------
    url:
        ``http(s)://host:port/bucket`` — exactly one path segment, the
        bucket.  This is the string fleets pass around as their cache
        *root*.
    page_size:
        Keys requested per listing page (tests shrink it to exercise
        pagination).
    timeout_s:
        Socket timeout of every request.

    One persistent connection is reused across requests (re-opened
    transparently when the server drops it) and guarded by a lock, so a
    worker's heartbeat thread and its main loop can share the store.
    """

    def __init__(self, url: str, page_size: int = DEFAULT_PAGE_SIZE,
                 timeout_s: float = 10.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        bucket = parsed.path.strip("/")
        if (parsed.scheme not in ("http", "https") or not parsed.netloc
                or not bucket or "/" in bucket):
            raise ConfigurationError(
                f"object-store URL must be http(s)://host:port/bucket, "
                f"got {url!r}")
        if page_size < 1:
            raise ConfigurationError("page_size must be >= 1")
        self.url = f"{parsed.scheme}://{parsed.netloc}/{bucket}"
        self.bucket = bucket
        self.page_size = page_size
        self.timeout_s = timeout_s
        self._scheme = parsed.scheme
        self._netloc = parsed.netloc
        self._lock = threading.Lock()
        self._conn: Optional[http.client.HTTPConnection] = None

    def describe(self) -> str:
        return self.url

    def __cache_fingerprint__(self) -> str:
        # Execution machinery: the endpoint must not leak into content keys.
        return type(self).__name__

    # -- transport ---------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        conn_type = (http.client.HTTPSConnection
                     if self._scheme == "https"
                     else http.client.HTTPConnection)
        return conn_type(self._netloc, timeout=self.timeout_s)

    def _request(self, method: str, path: str, body: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None,
                 ) -> Tuple[int, Dict[str, str], bytes]:
        with self._lock:
            last_error: Optional[Exception] = None
            # One transparent retry — but only when the request provably
            # never reached the server (the send itself failed, the usual
            # fate of a keep-alive connection the server idled out) or the
            # verb is read-only.  A conditional PUT whose *response* was
            # lost must NOT be replayed: the server may have committed it,
            # and the replay would then fail its own precondition (the
            # first write changed the ETag), turning a success into a
            # reported failure — e.g. a heartbeat owner concluding it
            # lost a lease it actually refreshed.
            for attempt in (0, 1):
                sent = False
                try:
                    if self._conn is None:
                        self._conn = self._connect()
                    self._conn.request(method, path, body=body,
                                       headers=headers or {})
                    sent = True
                    response = self._conn.getresponse()
                    data = response.read()
                    return (response.status,
                            {k.lower(): v for k, v in
                             response.getheaders()}, data)
                except (http.client.HTTPException, OSError) as exc:
                    last_error = exc
                    if self._conn is not None:
                        self._conn.close()
                        self._conn = None
                    if attempt or (sent and method not in ("GET", "HEAD")):
                        break
            raise ObjectStoreError(
                f"object store {self.url} unreachable: {last_error}")

    def _key_path(self, key: str) -> str:
        if not key or key.startswith("/"):
            raise ConfigurationError(f"invalid object key {key!r}")
        return f"/{self.bucket}/" + urllib.parse.quote(key, safe="/")

    @staticmethod
    def _etag_of(headers: Dict[str, str]) -> str:
        return headers.get("etag", "").strip('"')

    def close(self) -> None:
        """Drop the persistent connection (a new request reopens it)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # -- the CacheStore interface -------------------------------------------

    def get(self, key: str) -> Optional[StoredObject]:
        status, headers, data = self._request("GET", self._key_path(key))
        if status == 404:
            return None
        if status != 200:
            raise ObjectStoreError(f"GET {key}: unexpected status {status}")
        return StoredObject(data=data, etag=self._etag_of(headers))

    def put_atomic(self, key: str, data: bytes) -> str:
        status, headers, _ = self._request("PUT", self._key_path(key), data)
        if status not in (200, 201):
            raise ObjectStoreError(f"PUT {key}: unexpected status {status}")
        return self._etag_of(headers)

    def put_if_absent(self, key: str, data: bytes) -> Optional[str]:
        status, headers, _ = self._request(
            "PUT", self._key_path(key), data,
            headers={"If-None-Match": "*"})
        if status == 412:
            return None
        if status not in (200, 201):
            raise ObjectStoreError(f"PUT {key}: unexpected status {status}")
        return self._etag_of(headers)

    def put_if_match(self, key: str, data: bytes,
                     etag: str) -> Optional[str]:
        status, headers, _ = self._request(
            "PUT", self._key_path(key), data,
            headers={"If-Match": etag})
        if status in (404, 412):
            return None
        if status not in (200, 201):
            raise ObjectStoreError(f"PUT {key}: unexpected status {status}")
        return self._etag_of(headers)

    def list(self, prefix: str = "") -> List[ObjectInfo]:
        found: List[ObjectInfo] = []
        start_after = ""
        while True:
            query = urllib.parse.urlencode({
                "list": "1",
                "prefix": prefix,
                "max-keys": str(self.page_size),
                "start-after": start_after,
            })
            status, _, data = self._request(
                "GET", f"/{self.bucket}?{query}")
            if status != 200:
                raise ObjectStoreError(
                    f"LIST {prefix!r}: unexpected status {status}")
            try:
                page = json.loads(data)
                objects = page["objects"]
                truncated = bool(page["truncated"])
            except (ValueError, KeyError, TypeError) as exc:
                raise ObjectStoreError(
                    f"LIST {prefix!r}: malformed page: {exc}") from exc
            for entry in objects:
                found.append(ObjectInfo(key=str(entry["key"]),
                                        size=int(entry["size"]),
                                        etag=str(entry["etag"])))
            if not truncated or not objects:
                break
            start_after = found[-1].key
        return found

    def delete(self, key: str) -> bool:
        status, _, _ = self._request("DELETE", self._key_path(key))
        if status == 404:
            return False
        if status not in (200, 204):
            raise ObjectStoreError(
                f"DELETE {key}: unexpected status {status}")
        return True

    def stat(self, key: str) -> Optional[ObjectInfo]:
        status, headers, _ = self._request("HEAD", self._key_path(key))
        if status == 404:
            return None
        if status != 200:
            raise ObjectStoreError(f"HEAD {key}: unexpected status {status}")
        return ObjectInfo(key=key,
                          size=int(headers.get("content-length", "0")),
                          etag=self._etag_of(headers))


# ---------------------------------------------------------------------------
# The fake server


class _ObjectStoreHandler(BaseHTTPRequestHandler):
    """One request against the in-memory bucket map.

    Every mutation is evaluated under the server's single lock, so the
    conditional puts are genuinely atomic compare-and-swaps — the
    property the lease protocol's steal path is specified against.
    """

    protocol_version = "HTTP/1.1"  # keep-alive, so clients reuse sockets
    server_version = "FakeObjectStore/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # selftests and CI logs stay readable

    # -- plumbing ----------------------------------------------------------

    def _split_path(self) -> Tuple[str, str, Dict[str, str]]:
        parsed = urllib.parse.urlsplit(self.path)
        parts = parsed.path.lstrip("/").split("/", 1)
        bucket = urllib.parse.unquote(parts[0])
        key = urllib.parse.unquote(parts[1]) if len(parts) > 1 else ""
        query = {name: values[-1] for name, values in
                 urllib.parse.parse_qs(parsed.query,
                                       keep_blank_values=True).items()}
        return bucket, key, query

    def _reply(self, status: int, body: bytes = b"",
               etag: Optional[str] = None) -> None:
        self.send_response(status)
        if etag is not None:
            self.send_header("ETag", etag)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @property
    def _buckets(self) -> Dict[str, Dict[str, bytes]]:
        return self.server.buckets  # type: ignore[attr-defined]

    @property
    def _lock(self) -> threading.Lock:
        return self.server.lock  # type: ignore[attr-defined]

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler convention)
        bucket, key, query = self._split_path()
        if not key:
            self._list(bucket, query)
            return
        with self._lock:
            data = self._buckets.get(bucket, {}).get(key)
        if data is None:
            self._reply(404)
            return
        self._reply(200, body=data, etag=object_etag(data))

    def do_HEAD(self) -> None:  # noqa: N802
        bucket, key, _ = self._split_path()
        with self._lock:
            data = self._buckets.get(bucket, {}).get(key)
        if data is None:
            self._reply(404)
            return
        # HEAD advertises the size without a body; Content-Length is set
        # explicitly, so bypass _reply's len(body) logic.
        self.send_response(200)
        self.send_header("ETag", object_etag(data))
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()

    def do_PUT(self) -> None:  # noqa: N802
        bucket, key, _ = self._split_path()
        if not key:
            self._reply(400)
            return
        length = int(self.headers.get("Content-Length", "0"))
        data = self.rfile.read(length) if length else b""
        if_none_match = self.headers.get("If-None-Match")
        if_match = self.headers.get("If-Match")
        with self._lock:
            objects = self._buckets.setdefault(bucket, {})
            existing = objects.get(key)
            if if_none_match == "*" and existing is not None:
                self._reply(412)
                return
            if if_match is not None:
                if existing is None:
                    self._reply(404)
                    return
                if object_etag(existing) != if_match.strip('"'):
                    self._reply(412)
                    return
            objects[key] = data
        self._reply(200, etag=object_etag(data))

    def do_DELETE(self) -> None:  # noqa: N802
        bucket, key, _ = self._split_path()
        with self._lock:
            removed = self._buckets.get(bucket, {}).pop(key, None)
        self._reply(404 if removed is None else 204)

    def _list(self, bucket: str, query: Dict[str, str]) -> None:
        prefix = query.get("prefix", "")
        start_after = query.get("start-after", "")
        try:
            max_keys = int(query.get("max-keys", str(DEFAULT_PAGE_SIZE)))
        except ValueError:
            self._reply(400)
            return
        max_keys = max(1, min(max_keys, DEFAULT_PAGE_SIZE))
        with self._lock:
            snapshot = dict(self._buckets.get(bucket, {}))
        matching = sorted(key for key in snapshot
                          if key.startswith(prefix) and key > start_after)
        page = matching[:max_keys]
        body = json.dumps({
            "objects": [{"key": key, "size": len(snapshot[key]),
                         "etag": object_etag(snapshot[key])}
                        for key in page],
            "truncated": len(matching) > len(page),
        }).encode()
        self._reply(200, body=body)


class FakeObjectServer:
    """An in-process object-store endpoint (threaded, in-memory).

    Binds ``host:port`` (port 0 picks a free one), serves from a daemon
    thread, and exposes :attr:`url` for clients — in this process, in
    subprocess fleet workers, or on other machines when bound to a
    routable host.  Usable as a context manager::

        with FakeObjectServer() as server:
            store = ObjectStore(f"{server.url}/mybucket")
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _ObjectStoreHandler)
        self._httpd.daemon_threads = True
        self._httpd.buckets = {}  # type: ignore[attr-defined]
        self._httpd.lock = threading.Lock()  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """``http://host:port`` — append ``/bucket`` for a store root."""
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "FakeObjectServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="fake-object-server", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "FakeObjectServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# CLI (python -m repro.analysis.objstore)


def _selftest() -> int:
    """Protocol checks the client/server pair must satisfy end to end."""
    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    print("objstore selftest")
    with FakeObjectServer() as server:
        store = ObjectStore(f"{server.url}/selftest", page_size=3)
        check("miss reads cleanly",
              store.get("absent") is None and store.stat("absent") is None
              and not store.delete("absent"))
        etag = store.put_atomic("dir/a", b"payload")
        check("put/get round trip with content ETag",
              store.get("dir/a") == StoredObject(b"payload", etag)
              and etag == object_etag(b"payload"))
        check("stat reports size and ETag without the body",
              store.stat("dir/a") == ObjectInfo("dir/a", 7, etag))
        created = store.put_if_absent("dir/b", b"first")
        check("exclusive create wins once",
              created is not None
              and store.put_if_absent("dir/b", b"second") is None
              and store.get("dir/b").data == b"first")
        check("conditional replace demands the live ETag",
              store.put_if_match("dir/b", b"x", "stale") is None
              and store.put_if_match("dir/b", b"swapped",
                                     created) is not None
              and store.get("dir/b").data == b"swapped")

        for index in range(8):
            store.put_atomic(f"page/{index:02d}", bytes([index]))
        listed = store.list("page/")
        check("listing paginates to completeness (page_size=3, 8 keys)",
              [info.key for info in listed]
              == [f"page/{i:02d}" for i in range(8)]
              and all(info.size == 1 for info in listed))
        check("prefix scoping excludes other keys",
              [info.key for info in store.list("dir/")]
              == ["dir/a", "dir/b"])

        # Concurrent compare-and-swap: every racer conditions on the same
        # ETag, so the server must admit exactly one.
        base_etag = store.put_atomic("cas", b"base")
        racers = [ObjectStore(f"{server.url}/selftest") for _ in range(8)]
        outcomes: List[Optional[str]] = [None] * len(racers)

        def race(index: int) -> None:
            outcomes[index] = racers[index].put_if_match(
                "cas", b"winner-%d" % index, base_etag)

        threads = [threading.Thread(target=race, args=(index,))
                   for index in range(len(racers))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [index for index, outcome in enumerate(outcomes)
                   if outcome is not None]
        check("concurrent CAS admits exactly one winner",
              len(winners) == 1
              and store.get("cas").data == b"winner-%d" % winners[0])

        check("delete removes exactly once",
              store.delete("dir/a") and not store.delete("dir/a"))
    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Serve (``--serve``) or smoke-test (``--selftest``) the object store."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.objstore",
        description="Minimal S3-style object store backing the experiment "
                    "cache across shared-nothing fleets.")
    parser.add_argument("--serve", action="store_true",
                        help="run a standalone server until interrupted")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --serve (default: 127.0.0.1; "
                             "use 0.0.0.0 for a fleet-visible endpoint)")
    parser.add_argument("--port", type=int, default=9199,
                        help="bind port for --serve (default: 9199; "
                             "0 picks a free port)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the client/server protocol checks")
    args = parser.parse_args(argv)
    if args.selftest:
        return _selftest()
    if args.serve:
        server = FakeObjectServer(host=args.host, port=args.port)
        print(f"object store serving at {server.url} "
              f"(root spec: {server.url}/<bucket>)", flush=True)
        try:
            server.start()._thread.join()
        except KeyboardInterrupt:
            print("shutting down")
            server.stop()
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    import sys

    # Under ``python -m`` this file executes as ``__main__`` while the
    # package import created a second copy as ``repro.analysis.objstore``;
    # dispatch to the canonical copy, matching the package's other CLIs.
    from repro.analysis.objstore import main as _canonical_main

    sys.exit(_canonical_main())
