"""Monte-Carlo studies over process variation.

The paper's follow-up work on the SI SRAM includes "failure analysis and
corner performance analysis" [8]; this module provides the generic machinery:
sample a :class:`~repro.models.variation.ProcessVariation`, rebuild the
quantity of interest on the perturbed technology, and summarise the spread.

Sampling is *per-stream*: sample ``i`` of a study seeded ``seed`` is always
drawn from its own RNG stream seeded
:func:`~repro.analysis.runner.sample_seed` of ``(seed, i)``, so the values
do not depend on evaluation order — serial and pool execution through
:mod:`repro.analysis.runner` produce bit-identical summaries — and studies
with different base seeds share no streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.models.technology import Technology
from repro.models.variation import Corner, ProcessVariation

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.analysis.runner import Executor


@dataclass
class MonteCarloSummary:
    """Spread statistics of a Monte-Carlo study."""

    samples: List[float]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ConfigurationError("a summary needs at least one sample")

    @property
    def count(self) -> int:
        """Number of Monte-Carlo samples."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (population form for a single draw)."""
        mean = self.mean
        if len(self.samples) < 2:
            return 0.0
        variance = sum((x - mean) ** 2 for x in self.samples) / (len(self.samples) - 1)
        return math.sqrt(variance)

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return min(self.samples)

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return max(self.samples)

    @property
    def relative_spread(self) -> float:
        """Standard deviation as a fraction of the mean (sigma/mu)."""
        mean = self.mean
        if mean == 0:
            return float("inf") if self.std > 0 else 0.0
        return self.std / abs(mean)

    def percentile(self, fraction: float) -> float:
        """Value below which *fraction* of the samples fall (nearest rank)."""
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError("fraction must lie in [0, 1]")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[index]

    def failure_fraction(self, predicate: Callable[[float], bool]) -> float:
        """Fraction of samples for which *predicate* holds (e.g. spec misses)."""
        failing = sum(1 for x in self.samples if predicate(x))
        return failing / len(self.samples)


def run_study(technology: Technology,
              quantity: Callable[[Technology], float],
              samples: int = 100, seed: int = 0,
              sigma_vth: float = 0.03, sigma_drive: float = 0.05,
              sigma_leak: float = 0.3, corner: Corner = Corner.TYPICAL,
              executor: Optional["Executor"] = None) -> MonteCarloSummary:
    """Run a seeded Monte-Carlo study and summarise the spread.

    Sample ``i`` perturbs *technology* with a fresh
    :class:`~repro.models.variation.ProcessVariation` seeded
    :func:`~repro.analysis.runner.sample_seed` of ``(seed, i)``, so the
    summary is a pure function of ``(technology, quantity, samples, seed,
    sigmas, corner)`` — independent of which executor evaluated which
    sample.  Pass an :class:`~repro.analysis.runner.Executor` with
    ``workers >= 2`` to fan the samples out over a process pool, or one
    constructed with ``persistent=ResultCache(mode="rw")`` to replay a
    previously computed study from ``.repro_cache/`` bit-identically.
    """
    from repro.analysis.runner import Executor, ExperimentPlan

    plan = ExperimentPlan.monte_carlo(samples, technology=technology,
                                      seed=seed, sigma_vth=sigma_vth,
                                      sigma_drive=sigma_drive,
                                      sigma_leak=sigma_leak, corner=corner)
    if executor is None:
        executor = Executor(workers=0)
    return executor.run(plan, {"quantity": quantity}).summary("quantity")


class MonteCarloStudy:
    """Evaluate a technology-dependent quantity under random variation.

    Parameters
    ----------
    technology:
        The nominal process.
    quantity:
        Callable mapping a (perturbed) :class:`Technology` to the number of
        interest — e.g. ``lambda tech: BitlineModel(tech).read_delay(0.3)``.
    sigma_vth / sigma_drive:
        Relative variation magnitudes forwarded to
        :class:`~repro.models.variation.ProcessVariation`.
    seed:
        Base seed of the per-sample RNG streams (see :func:`run_study`).
    executor:
        Optional :class:`~repro.analysis.runner.Executor` used by
        :meth:`run`; the default is the deterministic serial path.

    The variation magnitudes live on the public ``variation`` attribute;
    :meth:`run` reads them from there, so replacing or adjusting it between
    runs takes effect.  Only the magnitudes are read: the sampler's own RNG
    does not drive :meth:`run` — per-sample streams are derived from
    ``self.seed`` via :func:`~repro.analysis.runner.sample_seed`, which is
    what keeps repeated and parallel runs bit-identical.
    """

    def __init__(self, technology: Technology,
                 quantity: Callable[[Technology], float],
                 sigma_vth: float = 0.03, sigma_drive: float = 0.05,
                 seed: int = 0, executor: Optional["Executor"] = None) -> None:
        self.technology = technology
        self.quantity = quantity
        self.seed = seed
        self.executor = executor
        self.variation = ProcessVariation(
            sigma_vth=sigma_vth,
            sigma_drive=sigma_drive,
            seed=seed,
        )

    def run(self, samples: int = 100) -> MonteCarloSummary:
        """Draw *samples* perturbed technologies and evaluate the quantity."""
        return run_study(self.technology, self.quantity, samples=samples,
                         seed=self.seed,
                         sigma_vth=self.variation.sigma_vth,
                         sigma_drive=self.variation.sigma_drive,
                         sigma_leak=self.variation.sigma_leak,
                         corner=self.variation.corner,
                         executor=self.executor)

    def nominal(self) -> float:
        """The quantity evaluated on the unperturbed technology."""
        return float(self.quantity(self.technology))
