"""Monte-Carlo studies over process variation.

The paper's follow-up work on the SI SRAM includes "failure analysis and
corner performance analysis" [8]; this module provides the generic machinery:
sample a :class:`~repro.models.variation.ProcessVariation`, rebuild the
quantity of interest on the perturbed technology, and summarise the spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import ConfigurationError
from repro.models.technology import Technology
from repro.models.variation import ProcessVariation


@dataclass
class MonteCarloSummary:
    """Spread statistics of a Monte-Carlo study."""

    samples: List[float]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ConfigurationError("a summary needs at least one sample")

    @property
    def count(self) -> int:
        """Number of Monte-Carlo samples."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (population form for a single draw)."""
        mean = self.mean
        if len(self.samples) < 2:
            return 0.0
        variance = sum((x - mean) ** 2 for x in self.samples) / (len(self.samples) - 1)
        return math.sqrt(variance)

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return min(self.samples)

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return max(self.samples)

    @property
    def relative_spread(self) -> float:
        """Standard deviation as a fraction of the mean (sigma/mu)."""
        mean = self.mean
        if mean == 0:
            return float("inf") if self.std > 0 else 0.0
        return self.std / abs(mean)

    def percentile(self, fraction: float) -> float:
        """Value below which *fraction* of the samples fall (nearest rank)."""
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError("fraction must lie in [0, 1]")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[index]

    def failure_fraction(self, predicate: Callable[[float], bool]) -> float:
        """Fraction of samples for which *predicate* holds (e.g. spec misses)."""
        failing = sum(1 for x in self.samples if predicate(x))
        return failing / len(self.samples)


class MonteCarloStudy:
    """Evaluate a technology-dependent quantity under random variation.

    Parameters
    ----------
    technology:
        The nominal process.
    quantity:
        Callable mapping a (perturbed) :class:`Technology` to the number of
        interest — e.g. ``lambda tech: BitlineModel(tech).read_delay(0.3)``.
    sigma_vth / sigma_drive:
        Relative variation magnitudes forwarded to
        :class:`~repro.models.variation.ProcessVariation`.
    """

    def __init__(self, technology: Technology,
                 quantity: Callable[[Technology], float],
                 sigma_vth: float = 0.03, sigma_drive: float = 0.05,
                 seed: int = 0) -> None:
        self.technology = technology
        self.quantity = quantity
        self.variation = ProcessVariation(
            sigma_vth=sigma_vth,
            sigma_drive=sigma_drive,
            seed=seed,
        )

    def run(self, samples: int = 100) -> MonteCarloSummary:
        """Draw *samples* perturbed technologies and evaluate the quantity."""
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        values: List[float] = []
        for _ in range(samples):
            perturbed = self.variation.apply_to(self.technology)
            values.append(float(self.quantity(perturbed)))
        return MonteCarloSummary(samples=values)

    def nominal(self) -> float:
        """The quantity evaluated on the unperturbed technology."""
        return float(self.quantity(self.technology))
