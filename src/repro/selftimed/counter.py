"""Self-timed counters.

Two counters appear in the paper:

* :class:`SelfTimedCounter` — the ripple chain of toggle flip-flops of
  Fig. 9, which, "connected in a pulse generator (oscillator) mode", converts
  the charge stored on a sampling capacitor into a binary code: every pulse
  drains a fixed quantum of charge, the logic slows as the voltage falls, and
  the chain stops when the supply collapses, freezing the count.
* :class:`DualRailCounter` — the 2-bit dual-rail, completion-detected
  sequential counter whose waveforms under an AC supply (200 mV ± 100 mV,
  1 MHz) are shown in Fig. 4.  Its value sequence is provably correct no
  matter how the supply wobbles, because every step is acknowledged through
  genuine completion detection; low supply only stretches the handshake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError, SupplyCollapseError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.sim.probes import EnergyProbe
from repro.sim.signals import Signal, vector_value
from repro.sim.simulator import Simulator
from repro.selftimed.completion import CompletionDetector
from repro.selftimed.dualrail import DualRailWord
from repro.selftimed.gates import CircuitElement, LogicGate
from repro.selftimed.toggle import ToggleFlipFlop


class SelfTimedCounter(CircuitElement):
    """Ripple counter of toggle flip-flops with an optional oscillator mode.

    Parameters
    ----------
    width:
        Number of toggle stages (output bits).
    oscillator_ring_stages:
        Number of gate delays making up one half-period of the pulse
        generator that drives the LSB in oscillator mode.
    internal_transitions_per_toggle:
        Energy/charge granularity of each toggle (see
        :class:`~repro.selftimed.toggle.ToggleFlipFlop`).
    max_pulses:
        Safety bound on the number of pulses generated in oscillator mode.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str = "counter", width: int = 8,
                 oscillator_ring_stages: int = 3,
                 internal_transitions_per_toggle: int = 3,
                 max_pulses: int = 1_000_000,
                 energy_probe: Optional[EnergyProbe] = None,
                 record_signals: bool = False) -> None:
        super().__init__(sim, supply, technology, name, energy_probe)
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        if oscillator_ring_stages < 1:
            raise ConfigurationError("oscillator_ring_stages must be >= 1")
        if max_pulses < 1:
            raise ConfigurationError("max_pulses must be >= 1")
        self.width = width
        self.oscillator_ring_stages = oscillator_ring_stages
        self.max_pulses = max_pulses
        #: Pulse input of the least-significant toggle (signal R0 in Fig. 9).
        self.pulse_input = Signal(f"{name}.r0", record=record_signals)
        self._osc_model = GateModel(technology=technology,
                                    gate_type=GateType.INVERTER)
        self.toggles: List[ToggleFlipFlop] = []
        previous: Signal = self.pulse_input
        for i in range(width):
            toggle = ToggleFlipFlop(
                sim, supply, technology, f"{name}.t{i}",
                input_signal=previous,
                internal_transitions=internal_transitions_per_toggle,
                energy_probe=energy_probe,
                on_stall=self._on_toggle_stall,
                record_output=record_signals or i < 4,
                # Stage 0 counts pulses on their rising edge; higher stages
                # ripple from the falling edge of the previous Q so the Q
                # vector reads as a binary up-count.
                trigger_on_rising=(i == 0),
            )
            self.toggles.append(toggle)
            previous = toggle.output
        self.pulses_generated = 0
        self.running = False
        self.finished = False
        self.on_finish: Optional[Callable[["SelfTimedCounter"], None]] = None

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------

    def value(self) -> int:
        """Current binary count (LSB = stage 0 output)."""
        return vector_value([toggle.output for toggle in self.toggles])

    def total_toggle_transitions(self) -> int:
        """Total elementary transitions spent by all toggle stages."""
        return sum(t.transition_count for t in self.toggles)

    def energy_consumed_total(self) -> float:
        """Energy consumed by the oscillator and every toggle, in joules."""
        return self.energy_consumed + sum(t.energy_consumed for t in self.toggles)

    # ------------------------------------------------------------------
    # Oscillator (pulse-generator) mode — Fig. 9
    # ------------------------------------------------------------------

    def start_oscillator(self) -> None:
        """Start generating pulses on the LSB input from the local supply.

        The oscillator keeps running until the supply collapses below the
        technology's functional minimum, the pulse budget is exhausted, or
        :meth:`stop_oscillator` is called.
        """
        if self.running:
            return
        self.running = True
        self.finished = False
        self._schedule_half_period(next_value=True)

    def stop_oscillator(self) -> None:
        """Stop generating pulses (the count freezes at its current value)."""
        self.running = False

    def _half_period(self, vdd: float) -> float:
        """Half period of the pulse generator at supply *vdd*.

        The LSB toggle itself is part of the oscillation loop (Fig. 9), so the
        pulse period can never be shorter than the toggle's own service time —
        otherwise pulses would be generated faster than the counter can accept
        them, which the handshake structurally prevents.
        """
        ring = self.oscillator_ring_stages * self._osc_model.delay(vdd)
        toggle_service = (self.toggles[0].internal_transitions
                          * self.toggles[0].model.delay(vdd))
        return max(ring, toggle_service)

    def _schedule_half_period(self, next_value: bool) -> None:
        vdd = self.rail_voltage()
        if not self._can_continue(vdd):
            return
        delay = self._half_period(vdd)
        self.sim.schedule(delay, lambda v=next_value: self._osc_edge(v),
                          label=f"{self.name}.osc")

    def _osc_edge(self, value: bool) -> None:
        if not self.running:
            return
        vdd = self.rail_voltage()
        if not self._can_continue(vdd):
            return
        try:
            # One ring transition per half period.
            self.bill_energy(self._osc_model.transition_energy(vdd),
                             label=f"{self.name}.osc")
        except SupplyCollapseError:
            self._finish()
            return
        self.transition_count += 1
        self.pulse_input.set(value, self.sim.now)
        if value:
            self.pulses_generated += 1
            if self.pulses_generated >= self.max_pulses:
                self._finish()
                return
        self._schedule_half_period(next_value=not value)

    def _can_continue(self, vdd: float) -> bool:
        if not self.running:
            return False
        if not self.is_functional(vdd):
            self._finish()
            return False
        return True

    def _on_toggle_stall(self, toggle: ToggleFlipFlop) -> None:
        """A toggle ran out of supply mid-count: the conversion is over."""
        self._finish()

    def _finish(self) -> None:
        if self.finished:
            return
        self.running = False
        self.finished = True
        if self.on_finish is not None:
            self.on_finish(self)


class DualRailCounter(CircuitElement):
    """Completion-detected dual-rail counter with a 4-phase handshake.

    Operation (one count step):

    1. environment raises ``req``;
    2. the counter computes ``count+1`` and drives it on the dual-rail output
       word (after the data-path delay at the *instantaneous* supply voltage);
    3. the event-driven completion detector sees a full codeword and raises
       ``ack``;
    4. environment lowers ``req``; the counter drives the spacer; completion
       detection sees the empty word and lowers ``ack``.

    Because each phase only proceeds on observed completion, the counter
    cannot mis-count no matter how slow (or briefly non-functional) the
    supply makes the logic — it is the behavioural equivalent of the paper's
    Fig. 4 demonstration.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str = "drcounter", width: int = 2,
                 datapath_gate_delays: int = 6,
                 stall_retry_interval: float = 50e-9,
                 energy_probe: Optional[EnergyProbe] = None) -> None:
        super().__init__(sim, supply, technology, name, energy_probe)
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        if datapath_gate_delays < 1:
            raise ConfigurationError("datapath_gate_delays must be >= 1")
        self.width = width
        self.datapath_gate_delays = datapath_gate_delays
        self.stall_retry_interval = stall_retry_interval
        self.req = Signal(f"{name}.req")
        self.word = DualRailWord(f"{name}.d", width=width)
        self.detector = CompletionDetector(
            sim, supply, technology, f"{name}.cd", self.word,
            energy_probe=energy_probe,
            stall_retry_interval=stall_retry_interval,
        )
        #: ``ack`` is the completion detector's done output.
        self.ack = self.detector.done
        self._model = GateModel(technology=technology, gate_type=GateType.XOR2)
        self._count = 0
        self.values_emitted: List[int] = []
        self.req.subscribe(self._on_req)

    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of completed count steps."""
        return self._count

    def _on_req(self, signal: Signal, value: bool, time: float) -> None:
        if value:
            self._start_step(target=(self._count + 1) % (1 << self.width))
        else:
            self._start_step(target=None)

    def _start_step(self, target: Optional[int]) -> None:
        vdd = self.rail_voltage()
        if not self.is_functional(vdd):
            # Wait for the supply to recover, then retry the same phase.
            self.stall_count += 1
            self.stalled = True
            self.sim.schedule(self.stall_retry_interval,
                              lambda t=target: self._start_step(t),
                              label=f"{self.name}.retry")
            return
        self.stalled = False
        delay = self.datapath_gate_delays * self._model.delay(vdd)
        self.sim.schedule(delay, lambda t=target: self._drive(t),
                          label=f"{self.name}.data")

    def _drive(self, target: Optional[int]) -> None:
        vdd = self.rail_voltage()
        if not self.is_functional(vdd):
            self.stall_count += 1
            self.sim.schedule(self.stall_retry_interval,
                              lambda t=target: self._drive(t),
                              label=f"{self.name}.retry")
            return
        # Bill the data-path energy: one transition per rail that changes
        # plus the computation overhead.
        transitions = self.width + self.datapath_gate_delays
        try:
            self.bill_energy(transitions * self._model.transition_energy(vdd))
        except SupplyCollapseError:
            self.sim.schedule(self.stall_retry_interval,
                              lambda t=target: self._drive(t),
                              label=f"{self.name}.retry")
            return
        self.transition_count += transitions
        self.word.drive_value(target, self.sim.now)
        if target is not None:
            self._count = target
            self.values_emitted.append(target)

    # ------------------------------------------------------------------

    def expected_sequence(self, steps: int) -> List[int]:
        """The value sequence a correct counter must emit for *steps* steps."""
        return [(i + 1) % (1 << self.width) for i in range(steps)]

    def sequence_is_correct(self) -> bool:
        """Check the emitted values against the expected modulo sequence."""
        return self.values_emitted == self.expected_sequence(len(self.values_emitted))


# ---------------------------------------------------------------------------
# Fig. 4 scenario: the counter driven through a 4-phase environment


#: Names of the scalar summaries a :class:`CounterRun` exposes through
#: :meth:`CounterRun.metrics` — the quantity set of a Fig. 4 style plan.
COUNTER_RUN_METRICS = ("steps_emitted", "sequence_correct", "stalls",
                       "finish_time", "energy")


@dataclass
class CounterRun:
    """Outcome of one driven run of the dual-rail counter (Fig. 4).

    ``finish_time`` is the completion time of the last handshake — the run
    may sit idle afterwards waiting for a ``req`` that never comes.
    """

    values_emitted: List[int]
    expected: List[int]
    sequence_correct: bool
    stall_count: int
    finish_time: float
    energy: float

    def metrics(self) -> dict:
        """Scalar per-run summary keyed by :data:`COUNTER_RUN_METRICS`."""
        return {
            "steps_emitted": float(len(self.values_emitted)),
            "sequence_correct": float(self.sequence_correct),
            "stalls": float(self.stall_count),
            "finish_time": self.finish_time,
            "energy": self.energy,
        }


def drive_dualrail_counter(sim: Simulator, counter: DualRailCounter,
                           steps: int, handshake_gap: float = 0.5e-9) -> None:
    """Attach the 4-phase environment of the paper's Fig. 4 testbench.

    The environment toggles ``req`` on the counter's ``ack`` edges —
    lowering ``req`` when ``ack`` rises, raising it again *handshake_gap*
    after ``ack`` falls — until *steps* count steps have been requested.
    The handshake therefore runs exactly as fast as the (possibly sagging)
    supply permits, which is the point of the figure.
    """
    if steps < 1:
        raise ConfigurationError("steps must be >= 1")
    state = {"steps_left": steps}

    def on_ack(signal: Signal, value: bool, time: float) -> None:
        if value:
            sim.schedule_signal(counter.req, False, handshake_gap)
        elif state["steps_left"] > 0:
            state["steps_left"] -= 1
            sim.schedule_signal(counter.req, True, handshake_gap)

    counter.ack.subscribe(on_ack)
    state["steps_left"] -= 1
    sim.schedule_signal(counter.req, True, handshake_gap)


def run_dualrail_scenario(technology: Technology, supply, steps: int,
                          width: int = 2, handshake_gap: float = 0.5e-9,
                          max_time: float = 1.0) -> CounterRun:
    """Run a fresh :class:`DualRailCounter` for *steps* handshakes (Fig. 4).

    The per-point evaluation of a Fig. 4 style experiment plan: one plan
    point per supply condition (AC rail, DC rail, ...).  The run is fully
    deterministic — the event kernel is seeded by nothing but the supply
    waveform — so pool workers and the serial path produce bit-identical
    :class:`CounterRun` summaries.
    """
    sim = Simulator()
    counter = DualRailCounter(sim, supply, technology, width=width)
    drive_dualrail_counter(sim, counter, steps, handshake_gap=handshake_gap)
    sim.run_until_idle(max_time=max_time)
    return CounterRun(
        values_emitted=list(counter.values_emitted),
        expected=counter.expected_sequence(steps),
        sequence_correct=counter.sequence_is_correct(),
        stall_count=counter.stall_count,
        finish_time=counter.ack.last_change_time,
        energy=counter.energy_consumed,
    )


def dualrail_completion_violations(technology: Technology, vdd: float,
                                   steps: int = 4, width: int = 2,
                                   handshake_gap: float = 0.5e-9) -> List[str]:
    """Dual-rail completion violations of one constant-supply counter run.

    The self-timed layer's invariant adapter for
    :mod:`repro.analysis.campaign.invariants`: at any supply above the
    technology's functional minimum, a :func:`run_dualrail_scenario` run
    must complete every requested handshake — the counter emits exactly
    *steps* values, in the expected sequence, without stalling, in
    positive time, and pays a positive energy bill for doing so.

    Returns human-readable violation messages; empty means the run held.
    """
    from repro.power.supply import ConstantSupply

    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps!r}")
    if not vdd >= technology.vdd_min:
        raise ConfigurationError(
            f"vdd={vdd!r} V is below the functional minimum "
            f"{technology.vdd_min!r} V of {technology.name}")
    run = run_dualrail_scenario(technology, ConstantSupply(vdd), steps,
                                width=width, handshake_gap=handshake_gap)
    violations: List[str] = []
    if len(run.values_emitted) != steps:
        violations.append(
            f"emitted {len(run.values_emitted)} of {steps} handshakes "
            f"at vdd={vdd!r} V")
    if not run.sequence_correct:
        violations.append(
            f"counter sequence wrong at vdd={vdd!r} V: emitted "
            f"{run.values_emitted!r}, expected {run.expected!r}")
    if run.stall_count:
        violations.append(
            f"{run.stall_count} stall(s) on a constant {vdd!r} V rail")
    if not run.finish_time > 0.0:
        violations.append(
            f"finish time not positive ({run.finish_time!r} s)")
    if not run.energy > 0.0:
        violations.append(
            f"completed {steps} handshakes for non-positive energy "
            f"({run.energy!r} J)")
    return violations
