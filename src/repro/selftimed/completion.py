"""Completion detection.

Completion detection is what makes a circuit *speed-independent*: instead of
assuming how long an operation takes, the circuit observes when its dual-rail
outputs have all become valid (or all returned to spacers) and only then
acknowledges.  The paper uses it twice — in the dual-rail logic of Design 1
and, crucially, in the SI SRAM where the bit-line transients themselves are
completion-detected.

Two flavours are provided:

* :class:`CompletionDetector` — an event-driven detector that lives in the
  simulation: per-bit OR gates followed by a C-element tree, all built from
  :class:`~repro.selftimed.gates.LogicGate`, so it has real delay and energy.
* :class:`CompletionTreeModel` — a closed-form delay/energy estimate of the
  same tree, used by the analytical design-style models (Fig. 2) and by the
  SRAM energy model, where instantiating thousands of gates would add nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.sim.probes import EnergyProbe
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator
from repro.selftimed.celement import CElement
from repro.selftimed.dualrail import DualRailWord
from repro.selftimed.gates import LogicGate


class CompletionDetector:
    """Event-driven completion detector over a dual-rail word.

    Structure: one OR gate per dual-rail bit (asserted while the bit holds
    data), combined by a balanced tree of C-elements.  The ``done`` output
    rises when *every* bit is valid and falls when every bit has returned to
    the spacer — exactly the alternation a 4-phase handshake needs.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str, word: DualRailWord,
                 energy_probe: Optional[EnergyProbe] = None,
                 stall_retry_interval: Optional[float] = None) -> None:
        self.sim = sim
        self.name = name
        self.word = word
        self._stall_retry_interval = stall_retry_interval
        self._or_outputs: List[Signal] = []
        self._or_gates: List[LogicGate] = []
        self._tree_gates: List[CElement] = []

        for bit in word:
            out = Signal(f"{name}.valid[{len(self._or_outputs)}]", record=False)
            gate = LogicGate(
                sim, supply, technology, f"{name}.or{len(self._or_outputs)}",
                inputs=bit.rails(), output=out,
                function=lambda t, f: t or f,
                gate_type=GateType.OR2,
                energy_probe=energy_probe,
                stall_retry_interval=stall_retry_interval,
            )
            self._or_outputs.append(out)
            self._or_gates.append(gate)

        self.done = self._build_tree(self._or_outputs, supply, technology,
                                     energy_probe)

    # ------------------------------------------------------------------

    def _build_tree(self, leaves: Sequence[Signal], supply,
                    technology: Technology,
                    energy_probe: Optional[EnergyProbe]) -> Signal:
        """Combine *leaves* pairwise with C-elements down to a single signal."""
        level = list(leaves)
        depth = 0
        while len(level) > 1:
            next_level: List[Signal] = []
            for i in range(0, len(level) - 1, 2):
                out = Signal(f"{self.name}.cd{depth}_{i // 2}", record=False)
                gate = CElement(
                    self.sim, supply, technology,
                    f"{self.name}.c{depth}_{i // 2}",
                    inputs=[level[i], level[i + 1]], output=out,
                    energy_probe=energy_probe,
                    stall_retry_interval=self._stall_retry_interval,
                )
                self._tree_gates.append(gate)
                next_level.append(out)
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
            depth += 1
        if len(level) == 1 and level[0] in self._or_outputs:
            # Single-bit word: expose the OR output directly but keep a
            # recorded alias so callers can watch "done".
            done = Signal(f"{self.name}.done", record=True)
            level[0].subscribe(lambda s, v, t: done.set(v, t))
            return done
        done = level[0]
        done.record = True
        done.history.append((self.sim.now, done.value))
        return done

    # ------------------------------------------------------------------

    @property
    def gate_count(self) -> int:
        """Number of gates the detector instantiated (area/overhead metric)."""
        return len(self._or_gates) + len(self._tree_gates)

    def energy_consumed(self) -> float:
        """Energy burned by the detector so far, in joules."""
        gates = list(self._or_gates) + list(self._tree_gates)
        return sum(gate.energy_consumed for gate in gates)


@dataclass(frozen=True)
class CompletionTreeModel:
    """Closed-form delay/energy model of a completion-detection tree.

    Parameters
    ----------
    technology:
        Process parameters.
    bits:
        Number of dual-rail bits being completion-detected.
    segment_size:
        Optional segmentation: the paper suggests "sectioning the completion
        detection in the column into smaller segments, say, of 8 bit each" to
        push the low-Vdd limit further down.  Segmentation shortens the
        C-element tree each segment sees (less load on the detected lines) at
        the cost of one extra merge level.
    """

    technology: Technology
    bits: int
    segment_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ConfigurationError("bits must be >= 1")
        if self.segment_size is not None and self.segment_size < 1:
            raise ConfigurationError("segment_size must be >= 1 when given")

    # ------------------------------------------------------------------

    def _tree_depth(self, leaves: int) -> int:
        return max(1, math.ceil(math.log2(max(2, leaves))))

    @property
    def gate_count(self) -> int:
        """OR gates plus C-elements of the (possibly segmented) tree."""
        or_gates = self.bits
        if self.segment_size is None:
            c_elements = self.bits - 1
        else:
            segments = math.ceil(self.bits / self.segment_size)
            c_elements = sum(
                max(0, min(self.segment_size, self.bits - s * self.segment_size) - 1)
                for s in range(segments)
            ) + max(0, segments - 1)
        return or_gates + c_elements

    def delay(self, vdd: float) -> float:
        """Detection latency in seconds at supply *vdd*."""
        or_gate = GateModel(technology=self.technology, gate_type=GateType.OR2)
        c_gate = GateModel(technology=self.technology, gate_type=GateType.C_ELEMENT)
        if self.segment_size is None:
            depth = self._tree_depth(self.bits)
        else:
            segments = math.ceil(self.bits / self.segment_size)
            depth = self._tree_depth(min(self.segment_size, self.bits))
            depth += self._tree_depth(segments) if segments > 1 else 0
        return or_gate.delay(vdd) + depth * c_gate.delay(vdd)

    def energy(self, vdd: float) -> float:
        """Energy of one complete detect/reset cycle at supply *vdd*."""
        or_gate = GateModel(technology=self.technology, gate_type=GateType.OR2)
        c_gate = GateModel(technology=self.technology, gate_type=GateType.C_ELEMENT)
        or_count = self.bits
        c_count = self.gate_count - or_count
        # Each gate switches twice per 4-phase cycle (set and reset).
        return 2.0 * (or_count * or_gate.transition_energy(vdd)
                      + c_count * c_gate.transition_energy(vdd))

    def leakage_power(self, vdd: float) -> float:
        """Static power of the detector at supply *vdd*, in watts."""
        or_gate = GateModel(technology=self.technology, gate_type=GateType.OR2)
        c_gate = GateModel(technology=self.technology, gate_type=GateType.C_ELEMENT)
        or_count = self.bits
        c_count = self.gate_count - or_count
        return (or_count * or_gate.leakage_power(vdd)
                + c_count * c_gate.leakage_power(vdd))
