"""Bundled-data design style — the paper's "Design 2".

In a bundled-data circuit the datapath is ordinary single-rail logic and the
*timing* is provided by a matched delay line on the request wire: the delay
line is sized at design time to be slower than the worst-case datapath, so
when the delayed request arrives the data is assumed valid.  This is cheap —
no dual-rail encoding, no completion detection — which is why Design 2 is
more power-efficient at nominal Vdd (Fig. 2).

Its weakness is exactly what the paper exploits to argue for self-timing:
the *margin* between the delay line and the datapath is a timing assumption,
and because different structures scale differently as Vdd drops (Fig. 5), a
margin that is comfortable at 1 V evaporates in the sub-threshold region.
:class:`BundledDataStage` models both effects: the matched delay line is
built from plain inverters while the datapath carries a configurable
threshold-voltage penalty (pass gates, long wires, bit lines), so the two
delays diverge at low Vdd and the stage eventually *fails* — raising
:class:`TimingViolation` if operated there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, ReproError
from repro.models.delay import InverterChain
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology


class TimingViolation(ReproError):
    """The matched delay line fired before the datapath had settled."""


@dataclass(frozen=True)
class MatchedDelayLine:
    """An inverter-chain delay element sized to cover a target delay.

    Parameters
    ----------
    technology:
        Process parameters.
    target_delay:
        Datapath delay (seconds) the line must cover, *at the calibration
        voltage*.
    calibration_vdd:
        Supply voltage at which the sizing was done (usually nominal).
    margin:
        Multiplicative safety margin applied at calibration time (typical
        bundled-data designs use 1.5–2×).
    """

    technology: Technology
    target_delay: float
    calibration_vdd: float
    margin: float = 1.5

    def __post_init__(self) -> None:
        if self.target_delay <= 0:
            raise ConfigurationError("target_delay must be positive")
        if self.calibration_vdd <= 0:
            raise ConfigurationError("calibration_vdd must be positive")
        if self.margin < 1.0:
            raise ConfigurationError("margin must be >= 1")

    @property
    def stages(self) -> int:
        """Number of inverters the line was sized to at calibration."""
        ruler = InverterChain(technology=self.technology, stages=1)
        stage_delay = ruler.stage_delay(self.calibration_vdd)
        return max(2, round(self.margin * self.target_delay / stage_delay))

    def delay(self, vdd: float) -> float:
        """Delay of the line at supply *vdd* (it scales like plain inverters)."""
        ruler = InverterChain(technology=self.technology, stages=self.stages)
        return ruler.total_delay(vdd)

    def energy(self, vdd: float) -> float:
        """Energy of one edge propagating down the line, in joules."""
        ruler = InverterChain(technology=self.technology, stages=self.stages)
        return ruler.energy(vdd)


class BundledDataStage:
    """One bundled-data pipeline stage (Design 2 of Fig. 2).

    Parameters
    ----------
    technology:
        Process parameters.
    logic_depth:
        Datapath depth in gate delays.
    datapath_width:
        Number of data bits (sets switching energy).
    datapath_vth_penalty:
        Extra effective threshold (volts) of the datapath relative to the
        plain inverters of the matched delay line.  This is the knob that
        makes the two delays scale differently with Vdd, reproducing the
        Fig. 5 mismatch mechanism; a value of 0 gives a perfectly tracking
        (but then uninteresting) bundle.
    margin:
        Delay-line sizing margin at the calibration voltage.
    calibration_vdd:
        Voltage at which the matched delay was sized (nominal Vdd unless the
        designer deliberately calibrates low).
    activity:
        Average switching activity of the datapath (fraction of bits that
        toggle per operation).
    """

    def __init__(self, technology: Technology, logic_depth: int = 10,
                 datapath_width: int = 16, datapath_vth_penalty: float = 0.06,
                 margin: float = 1.5, calibration_vdd: Optional[float] = None,
                 activity: float = 0.5, name: str = "bundled") -> None:
        if logic_depth < 1:
            raise ConfigurationError("logic_depth must be >= 1")
        if datapath_width < 1:
            raise ConfigurationError("datapath_width must be >= 1")
        if datapath_vth_penalty < 0:
            raise ConfigurationError("datapath_vth_penalty must be non-negative")
        if not (0.0 < activity <= 1.0):
            raise ConfigurationError("activity must lie in (0, 1]")
        self.name = name
        self.technology = technology
        self.logic_depth = logic_depth
        self.datapath_width = datapath_width
        self.activity = activity
        self.calibration_vdd = calibration_vdd or technology.vdd_nominal
        self._datapath_gate = GateModel(
            technology=technology, gate_type=GateType.NAND2,
            vth_offset=datapath_vth_penalty,
        )
        self._control_gate = GateModel(technology=technology,
                                       gate_type=GateType.C_ELEMENT)
        self.delay_line = MatchedDelayLine(
            technology=technology,
            target_delay=self.datapath_delay(self.calibration_vdd),
            calibration_vdd=self.calibration_vdd,
            margin=margin,
        )

    # ------------------------------------------------------------------
    # Delays
    # ------------------------------------------------------------------

    def datapath_delay(self, vdd: float) -> float:
        """Worst-case settling time of the datapath at supply *vdd*."""
        return self.logic_depth * self._datapath_gate.delay(vdd)

    def control_delay(self, vdd: float) -> float:
        """Delay of the matched request path (delay line + latch control)."""
        return self.delay_line.delay(vdd) + 2.0 * self._control_gate.delay(vdd)

    def timing_margin(self, vdd: float) -> float:
        """Control delay divided by datapath delay; < 1 means failure."""
        return self.control_delay(vdd) / self.datapath_delay(vdd)

    def is_functional(self, vdd: float) -> bool:
        """Whether the bundling assumption still holds at supply *vdd*."""
        if vdd < self.technology.vdd_min:
            return False
        return self.timing_margin(vdd) >= 1.0

    def minimum_operating_voltage(self, resolution: float = 0.005) -> float:
        """Lowest Vdd (volts) at which the stage still meets its bundle.

        Scans downward from the calibration voltage; this is the "Design 2
        cannot deliver at all" breakpoint of Fig. 2.
        """
        if resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        vdd = self.calibration_vdd
        lowest = vdd
        while vdd >= self.technology.vdd_min:
            if not self.is_functional(vdd):
                break
            lowest = vdd
            vdd -= resolution
        return lowest

    # ------------------------------------------------------------------
    # Operation-level figures
    # ------------------------------------------------------------------

    def cycle_time(self, vdd: float, check: bool = True) -> float:
        """Time for one data token to pass the stage at supply *vdd*.

        Raises :class:`TimingViolation` if *check* is set and the bundling
        constraint is violated at this voltage — operating there would
        silently corrupt data, which is the failure mode the speed-independent
        Design 1 cannot exhibit.
        """
        if check and not self.is_functional(vdd):
            raise TimingViolation(
                f"{self.name}: matched delay ({self.control_delay(vdd):.3e}s) is "
                f"shorter than the datapath ({self.datapath_delay(vdd):.3e}s) "
                f"at Vdd={vdd:.3f} V"
            )
        # 4-phase bundled-data cycle: set + reset of the request through the
        # delay line plus the latch overhead.
        return 2.0 * self.control_delay(vdd)

    def energy_per_operation(self, vdd: float) -> float:
        """Energy of one data token at supply *vdd*, in joules.

        Datapath switching (activity-scaled) + two edges down the delay line
        + latch control.  No completion-detection or dual-rail overhead —
        this is why Design 2 wins on efficiency at nominal voltage.
        """
        datapath = (self.datapath_width * self.activity * self.logic_depth
                    * self._datapath_gate.transition_energy(vdd) * 0.5)
        control = (2.0 * self.delay_line.energy(vdd)
                   + 4.0 * self._control_gate.transition_energy(vdd))
        return datapath + control

    def leakage_power(self, vdd: float) -> float:
        """Static power of the stage at supply *vdd*, in watts."""
        datapath_gates = self.datapath_width * self.logic_depth * 0.5
        control_gates = self.delay_line.stages + 4
        return (datapath_gates * self._datapath_gate.leakage_power(vdd)
                + control_gates * self._control_gate.leakage_power(vdd))

    def throughput(self, vdd: float, check: bool = True) -> float:
        """Operations per second at supply *vdd*."""
        return 1.0 / self.cycle_time(vdd, check=check)
