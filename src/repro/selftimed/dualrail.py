"""Dual-rail encoding.

In dual-rail (1-of-2) encoding every logical bit travels on two wires:
``bit.t`` (true rail) and ``bit.f`` (false rail).  A codeword is *valid* when
exactly one rail per bit is asserted and *empty* (a "spacer") when none are;
the alternation valid → empty → valid is what lets completion detection work
without any timing assumption — this is the paper's "Design 1" style and the
encoding of the 2-bit counter demonstrated under an AC supply (Fig. 4).

The module provides the signal-pair container (:class:`DualRailSignal`),
multi-bit words (:class:`DualRailWord`), encode/decode helpers, and validity
predicates used by the completion detectors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import CompletionDetectionError, ConfigurationError
from repro.sim.signals import Signal


class DualRailSignal:
    """One dual-rail encoded bit: a (true-rail, false-rail) signal pair."""

    def __init__(self, name: str, record: bool = True) -> None:
        self.name = name
        self.true_rail = Signal(f"{name}.t", record=record)
        self.false_rail = Signal(f"{name}.f", record=record)

    # ------------------------------------------------------------------

    @property
    def is_valid(self) -> bool:
        """Exactly one rail asserted — the bit carries data."""
        return self.true_rail.value != self.false_rail.value

    @property
    def is_empty(self) -> bool:
        """Neither rail asserted — the spacer between data words."""
        return not self.true_rail.value and not self.false_rail.value

    @property
    def is_illegal(self) -> bool:
        """Both rails asserted — never legal in a correct circuit."""
        return self.true_rail.value and self.false_rail.value

    def value(self) -> bool:
        """Decode the bit; raises if the codeword is not valid."""
        if not self.is_valid:
            raise CompletionDetectionError(
                f"dual-rail bit {self.name!r} read while "
                f"{'illegal' if self.is_illegal else 'empty'}"
            )
        return self.true_rail.value

    def drive(self, value: Optional[bool], time: float) -> None:
        """Drive a data value (``True``/``False``) or the spacer (``None``)."""
        if value is None:
            self.true_rail.set(False, time)
            self.false_rail.set(False, time)
        elif value:
            self.false_rail.set(False, time)
            self.true_rail.set(True, time)
        else:
            self.true_rail.set(False, time)
            self.false_rail.set(True, time)

    def rails(self) -> List[Signal]:
        """Both rails as a list (true rail first)."""
        return [self.true_rail, self.false_rail]

    def transition_count(self) -> int:
        """Total transitions across both rails."""
        return self.true_rail.transition_count + self.false_rail.transition_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_illegal:
            state = "ILLEGAL"
        elif self.is_empty:
            state = "empty"
        else:
            state = str(int(self.true_rail.value))
        return f"<DualRail {self.name}={state}>"


class DualRailWord:
    """A vector of dual-rail bits, least-significant bit first."""

    def __init__(self, name: str, width: int, record: bool = True) -> None:
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        self.name = name
        self.width = width
        self.bits = [DualRailSignal(f"{name}[{i}]", record=record)
                     for i in range(width)]

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.width

    def __iter__(self):
        return iter(self.bits)

    def __getitem__(self, index: int) -> DualRailSignal:
        return self.bits[index]

    @property
    def is_valid(self) -> bool:
        """All bits hold valid data (the codeword is complete)."""
        return all(bit.is_valid for bit in self.bits)

    @property
    def is_empty(self) -> bool:
        """All bits are spacers."""
        return all(bit.is_empty for bit in self.bits)

    def value(self) -> int:
        """Decode the word as an unsigned integer; requires a valid codeword."""
        if not self.is_valid:
            raise CompletionDetectionError(
                f"dual-rail word {self.name!r} decoded while incomplete"
            )
        word = 0
        for i, bit in enumerate(self.bits):
            if bit.value():
                word |= 1 << i
        return word

    def drive_value(self, value: Optional[int], time: float) -> None:
        """Drive an integer value, or the all-spacer word when *value* is None."""
        if value is None:
            for bit in self.bits:
                bit.drive(None, time)
            return
        if value < 0 or value >= (1 << self.width):
            raise ConfigurationError(
                f"value {value} does not fit in {self.width} dual-rail bits"
            )
        for i, bit in enumerate(self.bits):
            bit.drive(bool((value >> i) & 1), time)

    def all_rails(self) -> List[Signal]:
        """Every rail of every bit (for probes and waveform recorders)."""
        rails: List[Signal] = []
        for bit in self.bits:
            rails.extend(bit.rails())
        return rails

    def transition_count(self) -> int:
        """Total transitions across all rails of the word."""
        return sum(bit.transition_count() for bit in self.bits)


def dual_rail_encode(value: int, width: int) -> List[bool]:
    """Encode *value* as a flat rail list ``[b0.t, b0.f, b1.t, b1.f, ...]``."""
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    if value < 0 or value >= (1 << width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    rails: List[bool] = []
    for i in range(width):
        bit = bool((value >> i) & 1)
        rails.extend([bit, not bit])
    return rails


def dual_rail_decode(rails: Sequence[bool]) -> int:
    """Decode a flat rail list produced by :func:`dual_rail_encode`.

    Raises :class:`~repro.errors.CompletionDetectionError` on empty or
    illegal codewords — the caller should only decode after completion
    detection has fired.
    """
    if len(rails) % 2 != 0 or not rails:
        raise ConfigurationError("rail list must have a positive, even length")
    value = 0
    for i in range(len(rails) // 2):
        true_rail, false_rail = rails[2 * i], rails[2 * i + 1]
        if true_rail and false_rail:
            raise CompletionDetectionError(f"bit {i} has both rails asserted")
        if not true_rail and not false_rail:
            raise CompletionDetectionError(f"bit {i} is empty (spacer)")
        if true_rail:
            value |= 1 << i
    return value
