"""The Muller C-element.

The C-element is the fundamental state-holding gate of speed-independent
design (the paper's reference [3], Varshavsky's school): its output rises
only when *all* inputs are high and falls only when *all* inputs are low;
otherwise it holds its previous value.  Completion-detection trees, 4-phase
handshake controllers and the SI SRAM controller are built from it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.models.gate import GateType
from repro.models.technology import Technology
from repro.sim.probes import EnergyProbe
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator
from repro.selftimed.gates import LogicGate


class CElement(LogicGate):
    """An n-input Muller C-element with optional asymmetric reset.

    Parameters
    ----------
    inputs:
        Two or more input signals.
    output:
        The state-holding output signal.
    inverted_inputs:
        Optional per-input inversion mask (some handshake circuits need a
        "C-element with one inverted input").
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str, inputs: Sequence[Signal], output: Signal,
                 inverted_inputs: Optional[Sequence[bool]] = None,
                 drive_strength: float = 1.0,
                 load: Optional[float] = None,
                 energy_probe: Optional[EnergyProbe] = None,
                 stall_retry_interval: Optional[float] = None) -> None:
        if len(inputs) < 2:
            raise ConfigurationError("a C-element needs at least two inputs")
        if inverted_inputs is None:
            inverted_inputs = [False] * len(inputs)
        if len(inverted_inputs) != len(inputs):
            raise ConfigurationError(
                "inverted_inputs mask must match the number of inputs"
            )
        self._inversion_mask = tuple(bool(b) for b in inverted_inputs)
        self._output_ref = output
        gate_type = GateType.C_ELEMENT if len(inputs) == 2 else GateType.C_ELEMENT3

        def c_function(*values: bool) -> bool:
            effective = [v != inv for v, inv in zip(values, self._inversion_mask)]
            if all(effective):
                return True
            if not any(effective):
                return False
            return self._output_ref.value  # hold

        super().__init__(
            sim, supply, technology, name,
            inputs=inputs, output=output, function=c_function,
            gate_type=gate_type, drive_strength=drive_strength, load=load,
            energy_probe=energy_probe,
            stall_retry_interval=stall_retry_interval,
        )

    # ------------------------------------------------------------------

    def force(self, value: bool) -> None:
        """Asynchronously force the output (power-on reset modelling).

        Does not consume simulated time or energy — reset circuitry is
        outside the scope of the behavioural model.
        """
        self.output.set(bool(value), self.sim.now)
