"""Four-phase handshake channels.

Handshake (request/acknowledge) signalling is how self-timed blocks
synchronise without a clock; the SI SRAM controller of Fig. 6 "uses handshake
protocols to manage precharge, word line and write enable commands".
:class:`HandshakeChannel` provides the req/ack pair plus helpers to run the
4-phase protocol with explicit, voltage-dependent delays, and checks the
protocol rules (no acknowledgement without a request, strict alternation) so
an incorrectly sequenced controller fails loudly.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.errors import ProtocolError
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator


class HandshakePhase(enum.Enum):
    """Observable state of a 4-phase handshake."""

    IDLE = "idle"                    # req=0, ack=0
    REQUESTED = "requested"          # req=1, ack=0
    ACKNOWLEDGED = "acknowledged"    # req=1, ack=1
    RELEASING = "releasing"          # req=0, ack=1


class HandshakeChannel:
    """A req/ack signal pair with protocol checking and statistics.

    The channel is passive plumbing: the *active* side raises/lowers ``req``
    via :meth:`request` / :meth:`release`; the *passive* side answers with
    :meth:`acknowledge` / :meth:`withdraw`.  Every edge is checked against
    the 4-phase protocol; violations raise
    :class:`~repro.errors.ProtocolError` immediately, which is how the test
    suite asserts speed-independence (no sequence of delays may produce a
    violation).
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.req = Signal(f"{name}.req")
        self.ack = Signal(f"{name}.ack")
        self.cycles_completed = 0
        self._cycle_start_time: Optional[float] = None
        self.cycle_times: List[float] = []
        self._on_request: List[Callable[[float], None]] = []
        self._on_acknowledge: List[Callable[[float], None]] = []
        self._on_release: List[Callable[[float], None]] = []
        self._on_withdraw: List[Callable[[float], None]] = []
        self.req.subscribe(self._check_req)
        self.ack.subscribe(self._check_ack)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def phase(self) -> HandshakePhase:
        """Current protocol phase derived from the wire values."""
        if self.req.value and self.ack.value:
            return HandshakePhase.ACKNOWLEDGED
        if self.req.value:
            return HandshakePhase.REQUESTED
        if self.ack.value:
            return HandshakePhase.RELEASING
        return HandshakePhase.IDLE

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------

    def on_request(self, callback: Callable[[float], None]) -> None:
        """Call *callback(time)* whenever ``req`` rises."""
        self._on_request.append(callback)

    def on_acknowledge(self, callback: Callable[[float], None]) -> None:
        """Call *callback(time)* whenever ``ack`` rises."""
        self._on_acknowledge.append(callback)

    def on_release(self, callback: Callable[[float], None]) -> None:
        """Call *callback(time)* whenever ``req`` falls."""
        self._on_release.append(callback)

    def on_withdraw(self, callback: Callable[[float], None]) -> None:
        """Call *callback(time)* whenever ``ack`` falls (cycle complete)."""
        self._on_withdraw.append(callback)

    # ------------------------------------------------------------------
    # Protocol actions (immediate; callers add their own delays)
    # ------------------------------------------------------------------

    def request(self, delay: float = 0.0) -> None:
        """Raise ``req`` after *delay* seconds."""
        self.sim.schedule_signal(self.req, True, delay, label=f"{self.name}.req+")

    def acknowledge(self, delay: float = 0.0) -> None:
        """Raise ``ack`` after *delay* seconds."""
        self.sim.schedule_signal(self.ack, True, delay, label=f"{self.name}.ack+")

    def release(self, delay: float = 0.0) -> None:
        """Lower ``req`` after *delay* seconds."""
        self.sim.schedule_signal(self.req, False, delay, label=f"{self.name}.req-")

    def withdraw(self, delay: float = 0.0) -> None:
        """Lower ``ack`` after *delay* seconds."""
        self.sim.schedule_signal(self.ack, False, delay, label=f"{self.name}.ack-")

    # ------------------------------------------------------------------
    # Protocol checking
    # ------------------------------------------------------------------

    def _check_req(self, signal: Signal, value: bool, time: float) -> None:
        if value:
            if self.ack.value:
                raise ProtocolError(
                    f"{self.name}: req raised while ack still high"
                )
            self._cycle_start_time = time
            for callback in tuple(self._on_request):
                callback(time)
        else:
            if not self.ack.value:
                raise ProtocolError(
                    f"{self.name}: req released before ack was given"
                )
            for callback in tuple(self._on_release):
                callback(time)

    def _check_ack(self, signal: Signal, value: bool, time: float) -> None:
        if value:
            if not self.req.value:
                raise ProtocolError(
                    f"{self.name}: ack raised without a pending req"
                )
            for callback in tuple(self._on_acknowledge):
                callback(time)
        else:
            if self.req.value:
                raise ProtocolError(
                    f"{self.name}: ack withdrawn while req still high"
                )
            self.cycles_completed += 1
            if self._cycle_start_time is not None:
                self.cycle_times.append(time - self._cycle_start_time)
                self._cycle_start_time = None
            for callback in tuple(self._on_withdraw):
                callback(time)

    # ------------------------------------------------------------------

    def average_cycle_time(self) -> float:
        """Mean duration of completed handshake cycles, in seconds."""
        if not self.cycle_times:
            return float("nan")
        return sum(self.cycle_times) / len(self.cycle_times)
