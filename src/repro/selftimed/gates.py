"""Voltage-aware, energy-accounted event-driven gates.

Every circuit element in the library derives from :class:`CircuitElement`,
which couples three things together:

* a :class:`~repro.sim.simulator.Simulator` for scheduling,
* a supply node (:class:`~repro.power.supply.SupplyNode`) whose
  *instantaneous* voltage sets the element's delay and which is billed for
  every transition's energy,
* an optional :class:`~repro.sim.probes.EnergyProbe` for measurement.

:class:`LogicGate` adds the generic combinational-gate behaviour: it watches
its input signals, re-evaluates its boolean function on every change and
schedules the output transition after the voltage-dependent delay.  Inertial
behaviour is modelled by cancelling a pending output event when the inputs
change back before it fires.

Supply collapse is a first-class outcome, not an error path: if the supply is
below the technology's functional minimum at evaluation time, the gate
*stalls* and registers itself with the supply-watch list; the circuit that
owns it (e.g. the charge-to-digital converter) decides whether a stall means
"wait for more energy" or "conversion finished".
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError, SupplyCollapseError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.sim.events import Event, EventKind
from repro.sim.probes import EnergyProbe
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator


class CircuitElement:
    """Base class tying a circuit element to a simulator and a supply node.

    Parameters
    ----------
    sim:
        The event kernel.
    supply:
        Any object satisfying the supply-node protocol (``voltage(time)`` and
        ``draw_charge(charge, time)``).
    technology:
        Process parameters used by the element's gate models.
    name:
        Hierarchical instance name.
    energy_probe:
        Optional probe receiving every energy draw, labelled with *name*.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str, energy_probe: Optional[EnergyProbe] = None) -> None:
        self.sim = sim
        self.supply = supply
        self.technology = technology
        self.name = name
        self.energy_probe = energy_probe
        self.stalled = False
        self.stall_count = 0
        self.transition_count = 0
        self.energy_consumed = 0.0

    # ------------------------------------------------------------------

    def rail_voltage(self) -> float:
        """Supply voltage seen by this element right now."""
        return self.supply.voltage(self.sim.now)

    def is_functional(self, vdd: Optional[float] = None) -> bool:
        """Whether the element can switch at the given (or current) voltage."""
        if vdd is None:
            vdd = self.rail_voltage()
        return vdd >= self.technology.vdd_min

    def bill_energy(self, energy: float, label: str = "") -> None:
        """Draw *energy* joules from the supply and record it on the probe.

        Raises :class:`~repro.errors.SupplyCollapseError` if the supply can
        no longer deliver — callers that expect collapse (capacitor-powered
        circuits) catch it.
        """
        now = self.sim.now
        voltage = self.supply.voltage(now)
        if voltage <= 0:
            raise SupplyCollapseError(
                f"{self.name}: supply voltage is zero, cannot draw energy"
            )
        self.supply.draw_charge(energy / voltage, now)
        self.energy_consumed += energy
        if self.energy_probe is not None:
            self.energy_probe.record(energy, now, label=label or self.name)

    def bill_leakage(self, gate_model: GateModel, duration: float) -> None:
        """Bill the static energy of *duration* seconds of idling."""
        if duration <= 0:
            return
        vdd = self.rail_voltage()
        if vdd <= 0:
            return
        energy = gate_model.leakage_power(vdd) * duration
        try:
            self.bill_energy(energy, label="leakage")
        except SupplyCollapseError:
            pass  # a collapsed supply leaks nothing worth modelling


class LogicGate(CircuitElement):
    """A combinational gate with voltage-dependent delay and energy billing.

    Parameters
    ----------
    inputs:
        Input signals, in the order the boolean *function* expects them.
    output:
        Output signal driven by this gate.
    function:
        Maps a tuple of input booleans to the output boolean.
    gate_type, drive_strength:
        Select the :class:`~repro.models.gate.GateModel` parameters.
    load:
        External load capacitance in farads; ``None`` estimates a fan-out of
        two like gates.
    on_stall:
        Optional callback invoked (once per stall) when the gate cannot
        switch because the supply collapsed.
    stall_retry_interval:
        When set, a stalled gate automatically re-evaluates itself after
        this many seconds — the behaviour of real self-timed logic under an
        AC or recovering supply: it simply waits for the voltage to come
        back (Fig. 4).  ``None`` (default) leaves retrying to the owner.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str, inputs: Sequence[Signal], output: Signal,
                 function: Callable[..., bool],
                 gate_type: GateType = GateType.INVERTER,
                 drive_strength: float = 1.0,
                 load: Optional[float] = None,
                 energy_probe: Optional[EnergyProbe] = None,
                 on_stall: Optional[Callable[["LogicGate"], None]] = None,
                 stall_retry_interval: Optional[float] = None) -> None:
        super().__init__(sim, supply, technology, name, energy_probe)
        if not inputs:
            raise ConfigurationError(f"gate {name!r} needs at least one input")
        if stall_retry_interval is not None and stall_retry_interval <= 0:
            raise ConfigurationError("stall_retry_interval must be positive")
        self.inputs = list(inputs)
        self.output = output
        self.function = function
        self.model = GateModel(technology=technology, gate_type=gate_type,
                               drive_strength=drive_strength)
        self.load = (2.0 * self.model.input_capacitance) if load is None else load
        self.on_stall = on_stall
        self.stall_retry_interval = stall_retry_interval
        self._retry_pending = False
        self._pending: Optional[Event] = None
        self._pending_value: Optional[bool] = None
        for signal in self.inputs:
            signal.subscribe(self._on_input_change)

    # ------------------------------------------------------------------

    def _target_value(self) -> bool:
        return bool(self.function(*(signal.value for signal in self.inputs)))

    def _on_input_change(self, signal: Signal, value: bool, time: float) -> None:
        self.evaluate()

    def evaluate(self) -> None:
        """Re-evaluate the gate and (re)schedule the output transition."""
        target = self._target_value()
        if self._pending is not None and not self._pending.cancelled:
            if self._pending_value == target:
                return  # already on its way
            # Inertial cancellation: the input glitched back before the
            # output moved.
            self._pending.cancel()
            self._pending = None
            self._pending_value = None
        if target == self.output.value:
            return
        vdd = self.rail_voltage()
        if not self.is_functional(vdd):
            self._register_stall()
            return
        delay = self.model.delay(vdd, external_load=self.load)
        self._pending_value = target
        self._pending = self.sim.schedule(
            delay, lambda v=target: self._commit(v),
            kind=EventKind.SIGNAL, label=f"{self.name}->{int(target)}",
        )

    def _commit(self, value: bool) -> None:
        """Fire the output transition and bill its energy."""
        self._pending = None
        self._pending_value = None
        vdd = self.rail_voltage()
        if not self.is_functional(vdd):
            self._register_stall()
            return
        try:
            self.bill_energy(self.model.transition_energy(vdd, self.load))
        except SupplyCollapseError:
            self._register_stall()
            return
        self.transition_count += 1
        self.output.set(value, self.sim.now)
        # The inputs may have changed while the transition was in flight.
        if self._target_value() != value:
            self.evaluate()

    def _register_stall(self) -> None:
        self.stall_count += 1
        if not self.stalled:
            self.stalled = True
            if self.on_stall is not None:
                self.on_stall(self)
        if self.stall_retry_interval is not None and not self._retry_pending:
            self._retry_pending = True
            self.sim.schedule(self.stall_retry_interval, self._auto_retry,
                              label=f"{self.name}.retry")

    def _auto_retry(self) -> None:
        self._retry_pending = False
        self.retry()

    def retry(self) -> None:
        """Retry a stalled evaluation (called when the supply recovers)."""
        self.stalled = False
        self.evaluate()


class Inverter(LogicGate):
    """Single-input inverter — the unit from which delay rulers are built."""

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str, input_signal: Signal, output: Signal,
                 drive_strength: float = 1.0,
                 load: Optional[float] = None,
                 energy_probe: Optional[EnergyProbe] = None) -> None:
        super().__init__(
            sim, supply, technology, name,
            inputs=[input_signal], output=output,
            function=lambda a: not a,
            gate_type=GateType.INVERTER,
            drive_strength=drive_strength,
            load=load,
            energy_probe=energy_probe,
        )


class DelayLine(CircuitElement):
    """An event-driven chain of inverters used as a delay element.

    Unlike :class:`~repro.models.delay.InverterChain` (a purely analytical
    ruler), this version actually lives in the simulation: it creates one
    intermediate signal per stage, draws energy per stage transition, and its
    end-to-end delay therefore tracks the instantaneous supply voltage during
    propagation.  Bundled-data control paths (Design 2) and the
    reference-free sensor's ruler are built from it.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str, input_signal: Signal, stages: int,
                 drive_strength: float = 1.0,
                 energy_probe: Optional[EnergyProbe] = None,
                 record_stages: bool = False) -> None:
        super().__init__(sim, supply, technology, name, energy_probe)
        if stages < 1:
            raise ConfigurationError("DelayLine needs at least one stage")
        self.stages = stages
        self.stage_signals: List[Signal] = []
        self.gates: List[Inverter] = []
        previous = input_signal
        for i in range(stages):
            out = Signal(f"{name}.s{i}", initial=not previous.value,
                         record=record_stages or (i == stages - 1))
            gate = Inverter(sim, supply, technology, f"{name}.inv{i}",
                            input_signal=previous, output=out,
                            drive_strength=drive_strength,
                            energy_probe=energy_probe)
            self.stage_signals.append(out)
            self.gates.append(gate)
            previous = out
        self.output = previous

    # ------------------------------------------------------------------

    def stages_passed(self) -> int:
        """How many stages have settled to their "new" value.

        Counted as the number of consecutive leading stages whose transition
        count exceeds zero — i.e. how far the most recent input edge has
        propagated.  This is the thermometer read-out used by the
        reference-free voltage sensor.
        """
        passed = 0
        for gate in self.gates:
            if gate.transition_count > 0:
                passed += 1
            else:
                break
        return passed

    def nominal_delay(self, vdd: float) -> float:
        """Analytical end-to-end delay at a fixed supply *vdd*, in seconds."""
        if not self.gates:
            return 0.0
        gate = self.gates[0]
        return self.stages * gate.model.delay(vdd, external_load=gate.load)
