"""The toggle flip-flop (paper Fig. 10, taken from Varshavsky's book [3]).

The toggle is the unit cell of the self-timed counter: every complete pulse
on its input flips its output.  In the charge-to-digital converter the least
significant toggle runs in oscillator mode and each more significant toggle
divides the pulse rate by two, so the chain counts — and because every
internal transition draws a well defined quantum of charge from the supply,
the count is strictly proportional to the charge consumed.

The model is behavioural at the level the paper cares about: per input pulse
it spends the delay of a TOGGLE-class gate (several internal gate delays) and
bills the energy of ``internal_transitions`` elementary transitions.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError, SupplyCollapseError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.sim.probes import EnergyProbe
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator
from repro.selftimed.gates import CircuitElement


class ToggleFlipFlop(CircuitElement):
    """A self-timed toggle element.

    Parameters
    ----------
    input_signal:
        Pulse input; every rising edge toggles the output.
    name:
        Instance name; the output signal is called ``<name>.q``.
    internal_transitions:
        How many elementary gate transitions one toggle event costs
        (the Fig. 10 implementation uses a handful of gates; 3 is a
        representative figure and is what makes the charge-per-count
        constant).
    on_stall:
        Callback invoked when the toggle cannot fire because the supply
        collapsed — the charge-to-digital converter uses this to detect the
        end of a conversion.
    trigger_on_rising:
        Toggle on rising input edges (default) or on falling edges.  A ripple
        up-counter clocks each stage from the *falling* edge of the previous
        stage's output so that the Q vector reads as a plain binary count.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str, input_signal: Signal,
                 internal_transitions: int = 3,
                 energy_probe: Optional[EnergyProbe] = None,
                 on_stall: Optional[Callable[["ToggleFlipFlop"], None]] = None,
                 record_output: bool = True,
                 trigger_on_rising: bool = True) -> None:
        super().__init__(sim, supply, technology, name, energy_probe)
        if internal_transitions < 1:
            raise ConfigurationError("internal_transitions must be >= 1")
        self.input_signal = input_signal
        self.output = Signal(f"{name}.q", record=record_output)
        self.model = GateModel(technology=technology, gate_type=GateType.TOGGLE)
        self.internal_transitions = internal_transitions
        self.on_stall = on_stall
        self.trigger_on_rising = trigger_on_rising
        self.toggle_count = 0
        self._busy = False
        input_signal.subscribe(self._on_input)

    # ------------------------------------------------------------------

    def _on_input(self, signal: Signal, value: bool, time: float) -> None:
        if value == self.trigger_on_rising:
            self._fire()

    def _fire(self) -> None:
        """Begin one toggle: check the supply, schedule the output flip."""
        if self._busy:
            # A second pulse arrived before the previous toggle finished.
            # Real toggles would mis-operate here; the self-timed designs in
            # this library never produce that situation because the next
            # pulse is only generated after the handshake completes, so we
            # simply drop it (and count it as a stall for visibility).
            self.stall_count += 1
            return
        vdd = self.rail_voltage()
        if not self.is_functional(vdd):
            self._stall()
            return
        self._busy = True
        delay = self.model.delay(vdd) * self.internal_transitions
        self.sim.schedule(delay, self._complete, label=f"{self.name}.toggle")

    def _complete(self) -> None:
        """Finish the toggle: bill energy and flip the output."""
        self._busy = False
        vdd = self.rail_voltage()
        if not self.is_functional(vdd):
            self._stall()
            return
        energy = self.internal_transitions * self.model.transition_energy(vdd)
        try:
            self.bill_energy(energy)
        except SupplyCollapseError:
            self._stall()
            return
        self.toggle_count += 1
        self.transition_count += self.internal_transitions
        self.output.set(not self.output.value, self.sim.now)

    def _stall(self) -> None:
        self.stalled = True
        self.stall_count += 1
        self._busy = False
        if self.on_stall is not None:
            self.on_stall(self)

    # ------------------------------------------------------------------

    def charge_per_toggle(self, vdd: float) -> float:
        """Charge in coulombs one toggle draws from the supply at *vdd*.

        The proportionality constant of the charge-to-digital converter.
        """
        return (self.internal_transitions
                * self.model.transition_energy(vdd) / max(vdd, 1e-12) * 2.0)
