"""Metastability-aware synchronizer (paper reference [5]).

Power-adaptive systems inevitably contain clock-domain or timing-domain
crossings — between the always-on power-management controller and the
voltage-scaled load, or between a harvester-timed sampler and the
computational core.  The paper cites a "robust synchronizer" as one of the
power-adaptive cells needed at the lowest level of the adaptation hierarchy,
because synchronizer resolution time constants degrade badly at low Vdd.

:class:`RobustSynchronizer` models the standard first-order metastability
theory: the probability that a flip-flop has not resolved after settling
time ``t`` is ``exp(-t/τ)``, with the resolution time constant ``τ``
proportional to the regenerative loop delay and therefore strongly
voltage-dependent.  The "robust" variant of [5] keeps a usable τ further
into the low-voltage region than a conventional jamb latch, modelled by a
configurable de-rating factor.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ModelError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology


class RobustSynchronizer:
    """MTBF / resolution-time model of a two-flop synchronizer.

    Parameters
    ----------
    technology:
        Process parameters.
    robust:
        ``True`` models the robust topology of [5] (τ degrades ~3× less at
        low voltage); ``False`` models a conventional synchronizer.
    metastability_window:
        Effective aperture ``T_w`` in seconds at nominal Vdd.
    seed:
        Seed for the random settling-time generator.
    """

    def __init__(self, technology: Technology, robust: bool = True,
                 metastability_window: float = 20e-12,
                 seed: Optional[int] = None) -> None:
        if metastability_window <= 0:
            raise ConfigurationError("metastability_window must be positive")
        self.technology = technology
        self.robust = robust
        self.metastability_window = metastability_window
        self._latch = GateModel(technology=technology, gate_type=GateType.LATCH)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Characteristics
    # ------------------------------------------------------------------

    def tau(self, vdd: float) -> float:
        """Metastability resolution time constant at supply *vdd*, in seconds.

        τ tracks the regenerative loop delay; the robust topology of [5]
        degrades three times more slowly (relative to its nominal value) as
        the voltage falls.
        """
        nominal = self.technology.vdd_nominal
        base_tau = 0.5 * self._latch.delay(nominal)
        ratio = self._latch.delay(vdd) / self._latch.delay(nominal)
        if self.robust:
            ratio = ratio ** (1.0 / 3.0)
        return base_tau * ratio

    def window(self, vdd: float) -> float:
        """Effective metastability aperture T_w at supply *vdd*, in seconds."""
        nominal = self.technology.vdd_nominal
        scale = self._latch.delay(vdd) / self._latch.delay(nominal)
        return self.metastability_window * scale

    def failure_probability(self, settling_time: float, vdd: float) -> float:
        """Probability a single crossing has not resolved after *settling_time*."""
        if settling_time < 0:
            raise ModelError("settling_time must be non-negative")
        return math.exp(-settling_time / self.tau(vdd))

    def mtbf(self, settling_time: float, vdd: float,
             clock_frequency: float, data_rate: float) -> float:
        """Mean time between synchronization failures, in seconds.

        Standard formula ``MTBF = exp(t/τ) / (T_w · f_clk · f_data)``.
        """
        if clock_frequency <= 0 or data_rate <= 0:
            raise ModelError("clock_frequency and data_rate must be positive")
        exponent = settling_time / self.tau(vdd)
        # Guard against overflow for comfortable margins: cap at ~1e300.
        exponent = min(exponent, 690.0)
        return math.exp(exponent) / (self.window(vdd) * clock_frequency * data_rate)

    def required_settling_time(self, target_mtbf: float, vdd: float,
                               clock_frequency: float, data_rate: float) -> float:
        """Settling time needed to reach *target_mtbf* seconds, in seconds."""
        if target_mtbf <= 0:
            raise ModelError("target_mtbf must be positive")
        product = target_mtbf * self.window(vdd) * clock_frequency * data_rate
        return self.tau(vdd) * math.log(max(product, 1.0))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_settling_time(self, vdd: float) -> float:
        """Draw a random resolution time for one asynchronous arrival.

        Exponentially distributed with mean τ(vdd) plus the deterministic
        latch propagation delay — what an event-driven model should add to a
        domain-crossing signal's latency.
        """
        return float(self._rng.exponential(self.tau(vdd))) + self._latch.delay(vdd)

    def synchronization_latency(self, vdd: float, stages: int = 2) -> float:
        """Deterministic latency of an n-flop synchronizer at *vdd*, in seconds."""
        if stages < 1:
            raise ModelError("stages must be >= 1")
        return stages * 2.0 * self._latch.delay(vdd)
