"""Asynchronous pipelines.

The QoS comparison of Fig. 2 is ultimately about pipelines of computation
stages: a dual-rail, completion-detected pipeline (Design 1) keeps delivering
tokens — slowly — at any voltage where gates still switch, while a
bundled-data pipeline (Design 2) is faster and leaner at nominal voltage but
has a hard floor.  :class:`AsyncPipeline` provides an event-driven pipeline
of :class:`PipelineStage` objects so both styles (and the hybrid) can be run
against arbitrary supply profiles and their delivered throughput measured —
which is exactly the "QoS in return for energy" quantity the paper's vision
statement asks for.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ConfigurationError, SupplyCollapseError
from repro.models.technology import Technology
from repro.sim.probes import EnergyProbe
from repro.sim.signals import Signal
from repro.sim.simulator import Simulator
from repro.selftimed.gates import CircuitElement


class PipelineStage(CircuitElement):
    """One pipeline stage with a voltage-dependent service delay.

    Parameters
    ----------
    delay_model:
        Callable ``vdd -> seconds`` giving the stage's processing latency.
    energy_model:
        Callable ``vdd -> joules`` giving the energy of one token.
    functional_model:
        Optional callable ``vdd -> bool``; returns ``False`` when the stage
        cannot operate correctly at that voltage (bundled-data stages plug
        their timing-margin check in here).  A non-functional stage *waits*
        rather than corrupting the token.
    """

    def __init__(self, sim: Simulator, supply, technology: Technology,
                 name: str, delay_model: Callable[[float], float],
                 energy_model: Callable[[float], float],
                 functional_model: Optional[Callable[[float], bool]] = None,
                 retry_interval: float = 100e-9,
                 energy_probe: Optional[EnergyProbe] = None) -> None:
        super().__init__(sim, supply, technology, name, energy_probe)
        if retry_interval <= 0:
            raise ConfigurationError("retry_interval must be positive")
        self.delay_model = delay_model
        self.energy_model = energy_model
        self.functional_model = functional_model
        self.retry_interval = retry_interval
        self.busy = False
        self.tokens_processed = 0
        self.done = Signal(f"{name}.done", record=False)
        self.downstream: Optional["PipelineStage"] = None
        self._waiting_token: Optional[int] = None

    # ------------------------------------------------------------------

    def _functional_now(self, vdd: float) -> bool:
        if vdd < self.technology.vdd_min:
            return False
        if self.functional_model is not None and not self.functional_model(vdd):
            return False
        return True

    def offer(self, token: int) -> bool:
        """Offer a token to this stage; returns ``True`` if accepted."""
        if self.busy:
            return False
        self.busy = True
        self._process(token)
        return True

    def _process(self, token: int) -> None:
        vdd = self.rail_voltage()
        if not self._functional_now(vdd):
            self.stall_count += 1
            self.sim.schedule(self.retry_interval,
                              lambda t=token: self._process(t),
                              label=f"{self.name}.retry")
            return
        delay = self.delay_model(vdd)
        self.sim.schedule(delay, lambda t=token: self._finish(t),
                          label=f"{self.name}.service")

    def _finish(self, token: int) -> None:
        vdd = self.rail_voltage()
        if not self._functional_now(vdd):
            self.stall_count += 1
            self.sim.schedule(self.retry_interval,
                              lambda t=token: self._finish(t),
                              label=f"{self.name}.retry")
            return
        try:
            self.bill_energy(self.energy_model(vdd))
        except SupplyCollapseError:
            self.stall_count += 1
            self.sim.schedule(self.retry_interval,
                              lambda t=token: self._finish(t),
                              label=f"{self.name}.retry")
            return
        self.tokens_processed += 1
        self.transition_count += 1
        self._hand_off(token)

    def _hand_off(self, token: int) -> None:
        if self.downstream is None:
            self.busy = False
            self.done.set(not self.done.value, self.sim.now)
            return
        if self.downstream.offer(token):
            self.busy = False
            self.done.set(not self.done.value, self.sim.now)
        else:
            # Downstream full: retry shortly (back-pressure).
            self.sim.schedule(self.retry_interval,
                              lambda t=token: self._hand_off(t),
                              label=f"{self.name}.backpressure")


class AsyncPipeline:
    """A linear pipeline of stages fed from an internal token source.

    Parameters
    ----------
    stages:
        The pipeline stages, upstream first.  Their ``downstream`` links are
        wired automatically.
    """

    def __init__(self, sim: Simulator, stages: List[PipelineStage],
                 name: str = "pipeline") -> None:
        if not stages:
            raise ConfigurationError("pipeline needs at least one stage")
        self.sim = sim
        self.name = name
        self.stages = list(stages)
        for upstream, downstream in zip(self.stages, self.stages[1:]):
            upstream.downstream = downstream
        self.tokens_injected = 0
        self.tokens_completed = 0
        self.completion_times: List[float] = []
        self.stages[-1].done.subscribe(self._on_sink)

    # ------------------------------------------------------------------

    def _on_sink(self, signal: Signal, value: bool, time: float) -> None:
        self.tokens_completed += 1
        self.completion_times.append(time)

    def inject(self, tokens: int, interval: float = 0.0) -> None:
        """Queue *tokens* tokens for injection, *interval* seconds apart."""
        if tokens < 1:
            raise ConfigurationError("tokens must be >= 1")
        if interval < 0:
            raise ConfigurationError("interval must be non-negative")
        for i in range(tokens):
            self.sim.schedule(i * interval,
                              lambda idx=self.tokens_injected + i: self._try_inject(idx),
                              label=f"{self.name}.inject")
        self.tokens_injected += tokens

    def _try_inject(self, token: int) -> None:
        if not self.stages[0].offer(token):
            self.sim.schedule(self.stages[0].retry_interval,
                              lambda t=token: self._try_inject(t),
                              label=f"{self.name}.inject_retry")

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    def throughput(self) -> float:
        """Completed tokens per second over the span of completions."""
        if len(self.completion_times) < 2:
            return 0.0
        span = self.completion_times[-1] - self.completion_times[0]
        if span <= 0:
            return 0.0
        return (len(self.completion_times) - 1) / span

    def total_energy(self) -> float:
        """Energy consumed by all stages, in joules."""
        return sum(stage.energy_consumed for stage in self.stages)

    def energy_per_token(self) -> float:
        """Average energy per completed token, in joules."""
        if self.tokens_completed == 0:
            return float("inf")
        return self.total_energy() / self.tokens_completed
