"""Self-timed (asynchronous) circuit library.

The paper's enabling technology is speed-independent, self-timed logic:
circuits whose correct operation does not depend on gate delays and which
therefore keep working — just more slowly — when the supply voltage drops,
wobbles or collapses.  This package provides the building blocks the paper's
design examples are made of:

* voltage-aware event-driven gates (:mod:`repro.selftimed.gates`);
* the Muller C-element (:mod:`repro.selftimed.celement`);
* dual-rail encoding and completion detection (:mod:`repro.selftimed.dualrail`,
  :mod:`repro.selftimed.completion`);
* the toggle flip-flop of Fig. 10 (:mod:`repro.selftimed.toggle`);
* the self-timed ripple counter of Fig. 9, including the 2-bit dual-rail
  counter demonstrated under an AC supply in Fig. 4
  (:mod:`repro.selftimed.counter`);
* 4-phase handshake channels (:mod:`repro.selftimed.handshake`);
* bundled-data stages with matched delay lines — the paper's "Design 2"
  (:mod:`repro.selftimed.bundled`);
* asynchronous pipelines for throughput studies (:mod:`repro.selftimed.pipeline`);
* a metastability-aware synchronizer, reference [5] of the paper
  (:mod:`repro.selftimed.synchronizer`).
"""

from repro.selftimed.gates import CircuitElement, LogicGate, Inverter, DelayLine
from repro.selftimed.celement import CElement
from repro.selftimed.dualrail import (
    DualRailSignal,
    DualRailWord,
    dual_rail_encode,
    dual_rail_decode,
)
from repro.selftimed.completion import CompletionDetector, CompletionTreeModel
from repro.selftimed.toggle import ToggleFlipFlop
from repro.selftimed.counter import SelfTimedCounter, DualRailCounter
from repro.selftimed.handshake import HandshakeChannel, HandshakePhase
from repro.selftimed.bundled import BundledDataStage, MatchedDelayLine, TimingViolation
from repro.selftimed.pipeline import AsyncPipeline, PipelineStage
from repro.selftimed.synchronizer import RobustSynchronizer

__all__ = [
    "CircuitElement",
    "LogicGate",
    "Inverter",
    "DelayLine",
    "CElement",
    "DualRailSignal",
    "DualRailWord",
    "dual_rail_encode",
    "dual_rail_decode",
    "CompletionDetector",
    "CompletionTreeModel",
    "ToggleFlipFlop",
    "SelfTimedCounter",
    "DualRailCounter",
    "HandshakeChannel",
    "HandshakePhase",
    "BundledDataStage",
    "MatchedDelayLine",
    "TimingViolation",
    "AsyncPipeline",
    "PipelineStage",
    "RobustSynchronizer",
]
