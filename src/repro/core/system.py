"""The composed, end-to-end energy-modulated system.

This module is the "holistic view" of Fig. 3 made executable: an energy
harvester feeds a power chain, a voltage sensor meters the store, a
power-adaptive controller sets the rail and admits load, and (optionally) an
energy-token scheduler decides *which* work the admitted energy is spent on.
The paper's thesis — "a certain quality of service is delivered in return
for a certain amount of energy" — becomes a measurable property of the
composition: :meth:`EnergyModulatedSystem.run` returns a
:class:`SystemReport` whose ``operations_completed`` and ``energy_harvested``
define exactly that exchange rate, and
:meth:`EnergyModulatedSystem.proportionality_curve` characterises it across
energy budgets (the library's quantitative version of Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.design_styles import DesignStyle
from repro.core.power_adaptive import (
    AdaptationPolicy,
    AdaptationRecord,
    PowerAdaptiveController,
)
from repro.core.proportionality import ProportionalityCurve
from repro.errors import ConfigurationError
from repro.power.harvester import HarvesterModel
from repro.power.power_chain import ChainReport, PowerChain


@dataclass
class SystemReport:
    """End-to-end outcome of one energy-modulated run."""

    duration: float
    operations_completed: int
    energy_harvested: float
    energy_delivered_to_load: float
    energy_consumed_by_load: float
    average_rail_voltage: float
    duty_profile: Dict[str, float]
    chain: ChainReport
    adaptation_trace: List[AdaptationRecord] = field(default_factory=list)

    @property
    def operations_per_joule_harvested(self) -> float:
        """Useful operations per joule scavenged from the environment."""
        if self.energy_harvested <= 0:
            return 0.0
        return self.operations_completed / self.energy_harvested

    @property
    def end_to_end_efficiency(self) -> float:
        """Fraction of harvested energy that reached the computational load."""
        if self.energy_harvested <= 0:
            return 0.0
        return self.energy_consumed_by_load / self.energy_harvested

    @property
    def average_throughput(self) -> float:
        """Operations per second averaged over the whole run."""
        if self.duration <= 0:
            return 0.0
        return self.operations_completed / self.duration


class EnergyModulatedSystem:
    """Harvester + power chain + sensor + controller + computational load.

    Parameters
    ----------
    harvester:
        The environmental energy source.
    design:
        The computational fabric (a
        :class:`~repro.core.design_styles.DesignStyle`; the paper recommends
        the hybrid).
    sensor:
        Optional voltage sensor used for metering the store (ideal metering
        when omitted).
    policy:
        The adaptation policy thresholds.
    storage_capacitance:
        Storage capacitor size in farads.
    initial_store_voltage:
        Store voltage at the start of the run.
    control_interval:
        Length of one sense/decide/actuate step in seconds.
    """

    def __init__(self, harvester: HarvesterModel, design: DesignStyle,
                 sensor=None, policy: Optional[AdaptationPolicy] = None,
                 storage_capacitance: float = 100e-6,
                 initial_store_voltage: float = 2.0,
                 control_interval: float = 0.01,
                 name: str = "energy_modulated_system") -> None:
        if control_interval <= 0:
            raise ConfigurationError("control_interval must be positive")
        self.name = name
        self.harvester = harvester
        self.design = design
        self.chain = PowerChain(
            harvester=harvester,
            storage_capacitance=storage_capacitance,
            initial_store_voltage=initial_store_voltage,
            output_voltage=(policy.vdd_nominal if policy else 1.0),
            name=f"{name}.chain",
        )
        self.controller = PowerAdaptiveController(
            chain=self.chain,
            design=design,
            sensor=sensor,
            policy=policy,
            step_interval=control_interval,
        )

    # ------------------------------------------------------------------

    def run(self, duration: float) -> SystemReport:
        """Run the closed loop for *duration* seconds and report the outcome."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        trace = self.controller.run(duration)
        chain_report = self.chain.report()
        return SystemReport(
            duration=duration,
            operations_completed=self.controller.operations_done,
            energy_harvested=chain_report.energy_harvested,
            energy_delivered_to_load=chain_report.energy_delivered_to_load,
            energy_consumed_by_load=self.controller.energy_consumed,
            average_rail_voltage=self.controller.average_rail_voltage(),
            duty_profile=self.controller.duty_profile(),
            chain=chain_report,
            adaptation_trace=trace,
        )

    # ------------------------------------------------------------------
    # Characterisation
    # ------------------------------------------------------------------

    @staticmethod
    def proportionality_curve(build_system, durations: Sequence[float],
                              name: str = "energy_modulated",
                              ) -> ProportionalityCurve:
        """Characterise activity versus harvested energy across run lengths.

        *build_system* is a zero-argument callable returning a fresh
        :class:`EnergyModulatedSystem`; each duration is run on its own
        instance so the points are independent.  The resulting curve is the
        library's quantitative rendering of the paper's Fig. 1: a
        well-modulated system produces useful activity even for small energy
        inflows.
        """
        if len(durations) < 2:
            raise ConfigurationError("need at least two durations")
        points = []
        for duration in sorted(float(d) for d in durations):
            system = build_system()
            report = system.run(duration)
            points.append((max(report.energy_harvested, 1e-18),
                           float(report.operations_completed)))
        # Energies must strictly increase for the curve object; nudge ties.
        cleaned = []
        previous = None
        for energy, activity in points:
            if previous is not None and energy <= previous:
                energy = previous * (1.0 + 1e-9) + 1e-18
            cleaned.append((energy, activity))
            previous = energy
        return ProportionalityCurve(name=name, points=cleaned)
