"""A small place/transition Petri net substrate.

Reference [15] of the paper ("Task scheduling based on energy token model")
models energy-modulated scheduling as a Petri net in which *energy tokens*
gate the firing of computation transitions.  This module provides the plain
place/transition machinery; :mod:`repro.core.energy_tokens` extends it with
weighted energy places.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SchedulerError


@dataclass
class Place:
    """A Petri-net place holding a non-negative integer number of tokens."""

    name: str
    tokens: int = 0
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tokens < 0:
            raise ConfigurationError("initial tokens must be non-negative")
        if self.capacity is not None and self.capacity < self.tokens:
            raise ConfigurationError("capacity smaller than initial marking")

    def can_accept(self, count: int) -> bool:
        """Whether *count* more tokens fit under the capacity bound."""
        return self.capacity is None or self.tokens + count <= self.capacity

    def add(self, count: int) -> None:
        """Deposit *count* tokens."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if not self.can_accept(count):
            raise SchedulerError(f"place {self.name!r} capacity exceeded")
        self.tokens += count

    def remove(self, count: int) -> None:
        """Withdraw *count* tokens."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if self.tokens < count:
            raise SchedulerError(f"place {self.name!r} underflow")
        self.tokens -= count


@dataclass
class Transition:
    """A Petri-net transition with weighted input and output arcs."""

    name: str
    inputs: Dict[str, int] = field(default_factory=dict)
    outputs: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for arcs in (self.inputs, self.outputs):
            for place, weight in arcs.items():
                if weight < 1:
                    raise ConfigurationError(
                        f"arc weight to {place!r} must be >= 1"
                    )


class PetriNet:
    """A marked place/transition net with interleaving semantics."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.places: Dict[str, Place] = {}
        self.transitions: Dict[str, Transition] = {}
        self.firing_log: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_place(self, name: str, tokens: int = 0,
                  capacity: Optional[int] = None) -> Place:
        """Create and register a place."""
        if name in self.places:
            raise ConfigurationError(f"duplicate place {name!r}")
        place = Place(name=name, tokens=tokens, capacity=capacity)
        self.places[name] = place
        return place

    def add_transition(self, name: str, inputs: Dict[str, int],
                       outputs: Dict[str, int]) -> Transition:
        """Create and register a transition; all referenced places must exist."""
        if name in self.transitions:
            raise ConfigurationError(f"duplicate transition {name!r}")
        for place in list(inputs) + list(outputs):
            if place not in self.places:
                raise ConfigurationError(f"unknown place {place!r}")
        transition = Transition(name=name, inputs=dict(inputs),
                                outputs=dict(outputs))
        self.transitions[name] = transition
        return transition

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def marking(self) -> Dict[str, int]:
        """Current marking as a plain dict."""
        return {name: place.tokens for name, place in self.places.items()}

    def is_enabled(self, transition_name: str) -> bool:
        """Whether the transition can fire in the current marking."""
        transition = self._get_transition(transition_name)
        for place, weight in transition.inputs.items():
            if self.places[place].tokens < weight:
                return False
        for place, weight in transition.outputs.items():
            if not self.places[place].can_accept(weight):
                return False
        return True

    def enabled_transitions(self) -> List[str]:
        """Names of all transitions enabled in the current marking."""
        return [name for name in self.transitions if self.is_enabled(name)]

    def fire(self, transition_name: str) -> None:
        """Fire one transition (atomically consume inputs, produce outputs)."""
        if not self.is_enabled(transition_name):
            raise SchedulerError(f"transition {transition_name!r} is not enabled")
        transition = self._get_transition(transition_name)
        for place, weight in transition.inputs.items():
            self.places[place].remove(weight)
        for place, weight in transition.outputs.items():
            self.places[place].add(weight)
        self.firing_log.append(transition_name)

    def run(self, policy: Optional[Sequence[str]] = None,
            max_firings: int = 10_000) -> List[str]:
        """Fire transitions until quiescence.

        *policy* is an optional priority order of transition names; absent a
        policy, enabled transitions fire in name order (deterministic).
        Returns the firing sequence produced by this call.
        """
        if max_firings < 1:
            raise ConfigurationError("max_firings must be >= 1")
        fired: List[str] = []
        for _ in range(max_firings):
            enabled = self.enabled_transitions()
            if not enabled:
                return fired
            if policy:
                choices = [name for name in policy if name in enabled]
                choice = choices[0] if choices else sorted(enabled)[0]
            else:
                choice = sorted(enabled)[0]
            self.fire(choice)
            fired.append(choice)
        raise SchedulerError(
            f"net {self.name!r} did not quiesce within {max_firings} firings"
        )

    def is_deadlocked(self) -> bool:
        """True when no transition is enabled."""
        return not self.enabled_transitions()

    # ------------------------------------------------------------------

    def _get_transition(self, name: str) -> Transition:
        try:
            return self.transitions[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown transition {name!r}") from exc
