"""Petri nets with energy tokens (paper reference [15]).

The energy-token model makes the paper's "quanta of energy shape the
system's action" literal: special *energy places* hold tokens each standing
for a fixed quantum of harvested energy, and every computation transition
must consume the number of energy tokens corresponding to its energy cost
before it can fire.  Scheduling then *is* the game of deciding which enabled
computation to spend the next quantum on.

:class:`EnergyTokenNet` extends the plain :class:`~repro.core.petri.PetriNet`
with:

* an energy place with a configurable joules-per-token quantum,
* ``deposit_energy`` to convert harvested joules into tokens (the interface
  the harvester/power-chain side uses),
* energy-cost bookkeeping per transition and totals for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError, SchedulerError
from repro.core.petri import PetriNet, Place, Transition


@dataclass
class EnergyPlace:
    """Wrapper describing the energy place of an :class:`EnergyTokenNet`."""

    place: Place
    joules_per_token: float

    @property
    def stored_energy(self) -> float:
        """Energy represented by the current token count, in joules."""
        return self.place.tokens * self.joules_per_token


@dataclass
class EnergyTransition:
    """A computation transition plus its energy cost in tokens."""

    transition: Transition
    energy_tokens: int
    useful_work: float = 1.0

    @property
    def name(self) -> str:
        """The underlying transition's name."""
        return self.transition.name


class EnergyTokenNet(PetriNet):
    """A Petri net whose computation transitions consume energy tokens.

    Parameters
    ----------
    joules_per_token:
        The energy quantum one token represents.
    energy_capacity_tokens:
        Optional storage bound (a supercapacitor holds only so much).
    """

    ENERGY_PLACE = "__energy__"

    def __init__(self, joules_per_token: float = 1e-9,
                 energy_capacity_tokens: Optional[int] = None,
                 name: str = "energy_net") -> None:
        super().__init__(name=name)
        if joules_per_token <= 0:
            raise ConfigurationError("joules_per_token must be positive")
        place = self.add_place(self.ENERGY_PLACE, tokens=0,
                               capacity=energy_capacity_tokens)
        self.energy_place = EnergyPlace(place=place,
                                        joules_per_token=joules_per_token)
        self.energy_transitions: Dict[str, EnergyTransition] = {}
        self._energy_deposited = 0.0
        self._energy_spent_tokens = 0
        self._energy_overflow = 0.0

    # ------------------------------------------------------------------
    # Energy bookkeeping
    # ------------------------------------------------------------------

    def deposit_energy(self, joules: float) -> int:
        """Convert *joules* of harvested energy into tokens; returns tokens added.

        Energy that does not fit in the storage bound is recorded as overflow
        (a real supercapacitor would simply not be able to absorb it) and a
        fraction of a quantum is carried as remainder until enough
        accumulates — callers can deposit arbitrarily small amounts.
        """
        if joules < 0:
            raise ConfigurationError("joules must be non-negative")
        self._energy_deposited += joules
        carried = getattr(self, "_carry_joules", 0.0) + joules
        quantum = self.energy_place.joules_per_token
        tokens = int(carried / quantum)
        self._carry_joules = carried - tokens * quantum
        place = self.energy_place.place
        added = 0
        for _ in range(tokens):
            if place.can_accept(1):
                place.add(1)
                added += 1
            else:
                self._energy_overflow += quantum
        return added

    @property
    def energy_deposited(self) -> float:
        """Total harvested energy offered to the net, in joules."""
        return self._energy_deposited

    @property
    def energy_spent(self) -> float:
        """Energy consumed by fired computation transitions, in joules."""
        return self._energy_spent_tokens * self.energy_place.joules_per_token

    @property
    def energy_wasted(self) -> float:
        """Energy lost to storage overflow, in joules."""
        return self._energy_overflow

    @property
    def stored_energy(self) -> float:
        """Energy currently banked as tokens, in joules."""
        return self.energy_place.stored_energy

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_energy_transition(self, name: str, inputs: Dict[str, int],
                              outputs: Dict[str, int], energy_tokens: int,
                              useful_work: float = 1.0) -> EnergyTransition:
        """Add a computation transition costing *energy_tokens* per firing."""
        if energy_tokens < 0:
            raise ConfigurationError("energy_tokens must be non-negative")
        merged_inputs = dict(inputs)
        if energy_tokens > 0:
            merged_inputs[self.ENERGY_PLACE] = (
                merged_inputs.get(self.ENERGY_PLACE, 0) + energy_tokens
            )
        transition = self.add_transition(name, merged_inputs, outputs)
        record = EnergyTransition(transition=transition,
                                  energy_tokens=energy_tokens,
                                  useful_work=useful_work)
        self.energy_transitions[name] = record
        return record

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def fire(self, transition_name: str) -> None:
        """Fire a transition, accounting for any energy tokens it consumes."""
        record = self.energy_transitions.get(transition_name)
        super().fire(transition_name)
        if record is not None:
            self._energy_spent_tokens += record.energy_tokens

    def useful_work_done(self) -> float:
        """Sum of the useful-work weights of every fired energy transition."""
        total = 0.0
        for name in self.firing_log:
            record = self.energy_transitions.get(name)
            if record is not None:
                total += record.useful_work
        return total

    def energy_efficiency(self) -> float:
        """Useful work per joule of deposited energy."""
        if self._energy_deposited <= 0:
            return 0.0
        return self.useful_work_done() / self._energy_deposited

    def starved_transitions(self) -> Dict[str, int]:
        """Transitions blocked *only* by missing energy tokens.

        Returns a map of transition name → energy-token shortfall, the
        quantity a scheduler or power manager would act on.
        """
        shortfall: Dict[str, int] = {}
        available = self.energy_place.place.tokens
        for name, record in self.energy_transitions.items():
            transition = self.transitions[name]
            data_ready = all(
                self.places[p].tokens >= w
                for p, w in transition.inputs.items()
                if p != self.ENERGY_PLACE
            )
            if not data_ready:
                continue
            needed = transition.inputs.get(self.ENERGY_PLACE, 0)
            if needed > available:
                shortfall[name] = needed - available
        return shortfall
