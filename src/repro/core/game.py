"""Game-theoretic power management (paper reference [16]).

The paper's conclusion cites "game-theoretic power management for dependable
systems" as one of the mathematical underpinnings of energy-modulated
computing.  The setting is adversarial in a precise sense: the power manager
must commit to an operating point (a rail voltage / performance mode) for the
next control epoch *before* it knows how much energy the environment will
actually deliver; a pessimistic choice wastes the energy of a good epoch, an
optimistic one browns out in a bad epoch and loses the work in flight.

This module models that decision as a two-player game:

* the **power manager** picks a :class:`Strategy` (an operating mode with a
  known power demand and QoS yield);
* the **environment** "picks" a harvest level (a scenario);
* the payoff to the manager is the QoS actually delivered: full yield if the
  harvest covers the demand, a salvage fraction if the epoch browns out.

Two solution concepts are provided.  Against a purely adversarial
environment, :meth:`PowerManagementGame.minimax_strategy` computes the
security (maximin) strategy — possibly mixed — by solving the zero-sum game
with a small linear program (scipy).  Against a *stochastic* environment
with a known harvest distribution, :meth:`best_response_to` picks the
expected-payoff-maximising pure strategy, and
:meth:`fictitious_play` iterates empirical best responses of both sides to
approximate an equilibrium of the general-sum version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Strategy:
    """An operating mode the power manager can commit to for one epoch.

    Parameters
    ----------
    name:
        Identifier ("sleep", "design1@0.3V", "design2@1.0V", ...).
    power_demand:
        Power the mode draws if fully exercised, in watts.
    qos_yield:
        QoS delivered per epoch when the energy demand is met.
    salvage_fraction:
        Fraction of the yield retained when the epoch browns out (checkpointed
        self-timed designs salvage more than clocked ones).
    """

    name: str
    power_demand: float
    qos_yield: float
    salvage_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.power_demand < 0:
            raise ConfigurationError("power_demand must be non-negative")
        if self.qos_yield < 0:
            raise ConfigurationError("qos_yield must be non-negative")
        if not (0.0 <= self.salvage_fraction <= 1.0):
            raise ConfigurationError("salvage_fraction must lie in [0, 1]")


@dataclass
class GameSolution:
    """Result of solving the power-management game."""

    strategy_probabilities: Dict[str, float]
    game_value: float

    @property
    def best_pure_strategy(self) -> str:
        """The most heavily weighted strategy."""
        return max(self.strategy_probabilities.items(), key=lambda kv: kv[1])[0]

    def is_pure(self, tolerance: float = 1e-6) -> bool:
        """Whether the solution is (numerically) a single pure strategy."""
        return max(self.strategy_probabilities.values()) >= 1.0 - tolerance


class PowerManagementGame:
    """The manager-versus-environment power game.

    Parameters
    ----------
    strategies:
        The manager's available operating modes.
    harvest_levels:
        The environment's possible per-epoch power deliveries, in watts.
    harvest_probabilities:
        Optional distribution over *harvest_levels* (for the stochastic
        variants); must sum to one when given.
    """

    def __init__(self, strategies: Sequence[Strategy],
                 harvest_levels: Sequence[float],
                 harvest_probabilities: Optional[Sequence[float]] = None) -> None:
        if not strategies:
            raise ConfigurationError("need at least one strategy")
        if not harvest_levels:
            raise ConfigurationError("need at least one harvest level")
        names = [s.name for s in strategies]
        if len(set(names)) != len(names):
            raise ConfigurationError("strategy names must be unique")
        if any(level < 0 for level in harvest_levels):
            raise ConfigurationError("harvest levels must be non-negative")
        if harvest_probabilities is not None:
            if len(harvest_probabilities) != len(harvest_levels):
                raise ConfigurationError(
                    "harvest_probabilities must match harvest_levels")
            if any(p < 0 for p in harvest_probabilities):
                raise ConfigurationError("probabilities must be non-negative")
            total = float(sum(harvest_probabilities))
            if abs(total - 1.0) > 1e-9:
                raise ConfigurationError("harvest_probabilities must sum to 1")
        self.strategies = list(strategies)
        self.harvest_levels = [float(level) for level in harvest_levels]
        self.harvest_probabilities = (
            None if harvest_probabilities is None
            else [float(p) for p in harvest_probabilities])

    # ------------------------------------------------------------------
    # Payoffs
    # ------------------------------------------------------------------

    def payoff(self, strategy: Strategy, harvest_power: float) -> float:
        """QoS delivered when *strategy* meets an epoch harvesting *harvest_power*."""
        if harvest_power < 0:
            raise ConfigurationError("harvest_power must be non-negative")
        if harvest_power + 1e-15 >= strategy.power_demand:
            return strategy.qos_yield
        return strategy.salvage_fraction * strategy.qos_yield

    def payoff_matrix(self) -> np.ndarray:
        """Rows = manager strategies, columns = environment harvest levels."""
        matrix = np.empty((len(self.strategies), len(self.harvest_levels)))
        for i, strategy in enumerate(self.strategies):
            for j, level in enumerate(self.harvest_levels):
                matrix[i, j] = self.payoff(strategy, level)
        return matrix

    # ------------------------------------------------------------------
    # Solution concepts
    # ------------------------------------------------------------------

    def pure_security_strategy(self) -> GameSolution:
        """Maximin over pure strategies (the conservative deterministic choice)."""
        matrix = self.payoff_matrix()
        worst_case = matrix.min(axis=1)
        best = int(np.argmax(worst_case))
        probabilities = {s.name: 0.0 for s in self.strategies}
        probabilities[self.strategies[best].name] = 1.0
        return GameSolution(strategy_probabilities=probabilities,
                            game_value=float(worst_case[best]))

    def minimax_strategy(self) -> GameSolution:
        """Maximin over *mixed* strategies (the value of the zero-sum game).

        Solved as the standard linear program: maximise ``v`` subject to
        ``Aᵀx ≥ v``, ``Σx = 1``, ``x ≥ 0``.  Falls back to the pure security
        strategy if scipy's LP solver is unavailable.
        """
        matrix = self.payoff_matrix()
        try:
            from scipy.optimize import linprog
        except ImportError:  # pragma: no cover - scipy is a hard dependency here
            return self.pure_security_strategy()
        rows, cols = matrix.shape
        # Variables: x_0..x_{rows-1}, v.  Objective: maximise v  ⇒ minimise -v.
        c = np.zeros(rows + 1)
        c[-1] = -1.0
        # Constraints: for every column j, v - Σ_i x_i·A[i,j] ≤ 0.
        a_ub = np.hstack([-matrix.T, np.ones((cols, 1))])
        b_ub = np.zeros(cols)
        a_eq = np.zeros((1, rows + 1))
        a_eq[0, :rows] = 1.0
        b_eq = np.ones(1)
        bounds = [(0.0, None)] * rows + [(None, None)]
        result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                         bounds=bounds, method="highs")
        if not result.success:  # pragma: no cover - defensive
            return self.pure_security_strategy()
        x = np.clip(result.x[:rows], 0.0, None)
        total = x.sum()
        x = x / total if total > 0 else np.full(rows, 1.0 / rows)
        probabilities = {s.name: float(p) for s, p in zip(self.strategies, x)}
        return GameSolution(strategy_probabilities=probabilities,
                            game_value=float(result.x[-1]))

    def best_response_to(self, harvest_probabilities: Optional[Sequence[float]] = None,
                         ) -> GameSolution:
        """Expected-payoff-maximising pure strategy for a known harvest mix."""
        probabilities = (harvest_probabilities
                         if harvest_probabilities is not None
                         else self.harvest_probabilities)
        if probabilities is None:
            raise ConfigurationError(
                "a harvest distribution is required for a best response")
        if len(probabilities) != len(self.harvest_levels):
            raise ConfigurationError(
                "harvest_probabilities must match harvest_levels")
        weights = np.asarray(probabilities, dtype=float)
        matrix = self.payoff_matrix()
        expected = matrix @ weights
        best = int(np.argmax(expected))
        answer = {s.name: 0.0 for s in self.strategies}
        answer[self.strategies[best].name] = 1.0
        return GameSolution(strategy_probabilities=answer,
                            game_value=float(expected[best]))

    def fictitious_play(self, rounds: int = 200) -> GameSolution:
        """Approximate equilibrium play by iterated empirical best responses.

        The environment is treated as a minimising opponent (worst-case
        harvest); the returned mix is the manager's empirical strategy
        frequency after *rounds* iterations.
        """
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        matrix = self.payoff_matrix()
        rows, cols = matrix.shape
        row_counts = np.zeros(rows)
        col_counts = np.zeros(cols)
        # Seed with the pure security choices.
        row_counts[int(np.argmax(matrix.min(axis=1)))] += 1
        col_counts[int(np.argmin(matrix.max(axis=0)))] += 1
        for _ in range(rounds):
            col_mix = col_counts / col_counts.sum()
            row_best = int(np.argmax(matrix @ col_mix))
            row_counts[row_best] += 1
            row_mix = row_counts / row_counts.sum()
            col_best = int(np.argmin(row_mix @ matrix))
            col_counts[col_best] += 1
        row_mix = row_counts / row_counts.sum()
        value = float(row_mix @ matrix @ (col_counts / col_counts.sum()))
        probabilities = {s.name: float(p)
                         for s, p in zip(self.strategies, row_mix)}
        return GameSolution(strategy_probabilities=probabilities,
                            game_value=value)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(self, solution: GameSolution, epochs: int = 1000,
                 seed: int = 0,
                 harvest_probabilities: Optional[Sequence[float]] = None,
                 ) -> float:
        """Average QoS per epoch when playing *solution* against random harvests."""
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        probabilities = (harvest_probabilities
                         if harvest_probabilities is not None
                         else self.harvest_probabilities)
        if probabilities is None:
            probabilities = [1.0 / len(self.harvest_levels)] * len(self.harvest_levels)
        rng = np.random.default_rng(seed)
        names = [s.name for s in self.strategies]
        mix = np.array([solution.strategy_probabilities.get(name, 0.0)
                        for name in names])
        mix = mix / mix.sum()
        total = 0.0
        strategy_draws = rng.choice(len(names), size=epochs, p=mix)
        harvest_draws = rng.choice(len(self.harvest_levels), size=epochs,
                                   p=np.asarray(probabilities, dtype=float))
        for s_idx, h_idx in zip(strategy_draws, harvest_draws):
            total += self.payoff(self.strategies[int(s_idx)],
                                 self.harvest_levels[int(h_idx)])
        return total / epochs


def strategies_from_design(design, vdd_levels: Sequence[float],
                           epoch_duration: float = 1.0,
                           salvage_fraction: float = 0.5) -> List[Strategy]:
    """Build manager strategies from a design style's operating points.

    Each Vdd level becomes a strategy whose power demand and QoS yield come
    from the design's ``power`` and ``throughput`` at that voltage; a
    non-functional voltage yields a zero-demand, zero-yield "sleep" strategy.
    """
    if not vdd_levels:
        raise ConfigurationError("vdd_levels must not be empty")
    if epoch_duration <= 0:
        raise ConfigurationError("epoch_duration must be positive")
    strategies: List[Strategy] = []
    for vdd in vdd_levels:
        vdd = float(vdd)
        if design.is_functional(vdd):
            strategies.append(Strategy(
                name=f"{getattr(design, 'name', 'design')}@{vdd:.2f}V",
                power_demand=design.power(vdd),
                qos_yield=design.throughput(vdd) * epoch_duration,
                salvage_fraction=salvage_fraction,
            ))
        else:
            strategies.append(Strategy(
                name=f"sleep@{vdd:.2f}V",
                power_demand=design.leakage_power(vdd),
                qos_yield=0.0,
                salvage_fraction=0.0,
            ))
    return strategies
