"""Soft arbitration and concurrency management (paper reference [11]).

The paper's conclusion points to "adaptation by means of task concurrency
control and 'soft arbitration'" as the system-level mechanism for
power-elastic systems: instead of a hard arbiter that grants a shared
resource to exactly one requester, a *soft* arbiter modulates **how many**
requesters may proceed concurrently so that the instantaneous power drawn by
the computational load tracks the power the supply can actually deliver.

Two classes implement this idea:

* :class:`SoftArbiter` — a power-budgeted grant mechanism.  Requesters
  register with a per-grant power cost; each arbitration round the arbiter
  grants as many outstanding requests as fit under the current power budget,
  ordering them by a fairness-aware priority (longest-waiting first).
* :class:`ConcurrencyManager` — the policy layer: given a supply power level
  it chooses the *degree of concurrency* (number of simultaneously active
  tasks) and drives a :class:`SoftArbiter`, recording the resulting
  power/latency trade-off that reference [12]'s stochastic analysis studies
  analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ArbitrationError, ConfigurationError


@dataclass
class GrantRecord:
    """One granted request (who, when asked, when granted)."""

    requester: str
    request_round: int
    grant_round: int
    power: float

    @property
    def waiting_rounds(self) -> int:
        """How many arbitration rounds the requester waited."""
        return self.grant_round - self.request_round


@dataclass
class _PendingRequest:
    requester: str
    request_round: int


class SoftArbiter:
    """Grant concurrent access under an instantaneous power budget.

    Parameters
    ----------
    power_budget:
        Maximum total power (watts) of simultaneously granted requesters.
    """

    def __init__(self, power_budget: float, name: str = "soft_arbiter") -> None:
        if power_budget < 0:
            raise ConfigurationError("power_budget must be non-negative")
        self.name = name
        self.power_budget = power_budget
        self._clients: Dict[str, float] = {}
        self._pending: List[_PendingRequest] = []
        self._active: Dict[str, float] = {}
        self._round = 0
        self.grants: List[GrantRecord] = []

    # ------------------------------------------------------------------
    # Registration and requests
    # ------------------------------------------------------------------

    def register(self, requester: str, power: float) -> None:
        """Register *requester* with its per-grant power draw (watts)."""
        if power < 0:
            raise ConfigurationError("power must be non-negative")
        if requester in self._clients:
            raise ConfigurationError(f"requester {requester!r} already registered")
        self._clients[requester] = power

    def request(self, requester: str) -> None:
        """Queue a request; it stays pending until a later :meth:`arbitrate`."""
        if requester not in self._clients:
            raise ArbitrationError(f"unknown requester {requester!r}")
        if requester in self._active:
            raise ArbitrationError(f"requester {requester!r} is already granted")
        if any(p.requester == requester for p in self._pending):
            raise ArbitrationError(f"requester {requester!r} already pending")
        self._pending.append(_PendingRequest(requester, self._round))

    def release(self, requester: str) -> None:
        """Return a granted slot (the requester finished its critical work)."""
        if requester not in self._active:
            raise ArbitrationError(f"requester {requester!r} holds no grant")
        del self._active[requester]

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------

    @property
    def round_number(self) -> int:
        """Number of arbitration rounds performed so far."""
        return self._round

    @property
    def active(self) -> Dict[str, float]:
        """Currently granted requesters and their power draws."""
        return dict(self._active)

    @property
    def pending(self) -> List[str]:
        """Requesters still waiting, oldest first."""
        return [p.requester for p in self._pending]

    def active_power(self) -> float:
        """Total power of currently granted requesters, in watts."""
        return sum(self._active.values())

    def set_power_budget(self, power_budget: float) -> None:
        """Change the budget (the supply got stronger or weaker)."""
        if power_budget < 0:
            raise ConfigurationError("power_budget must be non-negative")
        self.power_budget = power_budget

    def arbitrate(self) -> List[str]:
        """Run one arbitration round; returns the newly granted requesters.

        Pending requests are considered oldest-first (so no requester starves)
        and granted while they fit under the remaining power budget.  A
        request that does not fit is skipped for this round — *soft*
        arbitration never rejects, it only delays.
        """
        self._round += 1
        granted: List[str] = []
        headroom = self.power_budget - self.active_power()
        still_pending: List[_PendingRequest] = []
        for entry in self._pending:
            power = self._clients[entry.requester]
            if power <= headroom + 1e-15:
                self._active[entry.requester] = power
                headroom -= power
                granted.append(entry.requester)
                self.grants.append(GrantRecord(
                    requester=entry.requester,
                    request_round=entry.request_round,
                    grant_round=self._round,
                    power=power,
                ))
            else:
                still_pending.append(entry)
        self._pending = still_pending
        return granted

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def average_waiting_rounds(self) -> float:
        """Mean rounds between request and grant over the whole history."""
        if not self.grants:
            return 0.0
        return sum(g.waiting_rounds for g in self.grants) / len(self.grants)

    def degree_of_concurrency(self) -> int:
        """How many requesters are currently active simultaneously."""
        return len(self._active)


@dataclass
class ConcurrencyRecord:
    """One step of concurrency management."""

    step: int
    supply_power: float
    allowed_concurrency: int
    achieved_concurrency: int
    completed: int
    backlog: int


class ConcurrencyManager:
    """Choose the degree of concurrency to match the available supply power.

    The manager models a pool of identical workers, each drawing
    ``power_per_task`` watts while active and finishing a work item every
    ``service_rounds`` arbitration rounds.  At every step it reads the supply
    power level, computes the largest degree of concurrency that fits, and
    reconfigures a :class:`SoftArbiter` accordingly.  Work items arrive at a
    fixed rate and queue while the supply is weak — power elasticity turns a
    power shortfall into latency rather than failure.
    """

    def __init__(self, power_per_task: float, service_rounds: int = 1,
                 max_concurrency: int = 16,
                 name: str = "concurrency_manager") -> None:
        if power_per_task <= 0:
            raise ConfigurationError("power_per_task must be positive")
        if service_rounds < 1:
            raise ConfigurationError("service_rounds must be >= 1")
        if max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be >= 1")
        self.name = name
        self.power_per_task = power_per_task
        self.service_rounds = service_rounds
        self.max_concurrency = max_concurrency
        self.arbiter = SoftArbiter(power_budget=0.0, name=f"{name}.arbiter")
        for worker in range(max_concurrency):
            self.arbiter.register(self._worker_name(worker), power_per_task)
        self.records: List[ConcurrencyRecord] = []
        self._backlog = 0
        self._completed = 0
        self._in_service: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def _worker_name(self, index: int) -> str:
        return f"{self.name}.worker{index}"

    def allowed_concurrency(self, supply_power: float) -> int:
        """Largest worker count the supply can power, capped at the pool size."""
        if supply_power <= 0:
            return 0
        return min(self.max_concurrency, int(supply_power / self.power_per_task))

    @property
    def backlog(self) -> int:
        """Work items admitted but not yet completed."""
        return self._backlog

    @property
    def completed(self) -> int:
        """Work items completed so far."""
        return self._completed

    def submit(self, items: int) -> None:
        """Admit *items* new work items into the backlog."""
        if items < 0:
            raise ConfigurationError("items must be non-negative")
        self._backlog += items

    # ------------------------------------------------------------------

    def step(self, supply_power: float, arrivals: int = 0) -> ConcurrencyRecord:
        """One management step: admit arrivals, adapt concurrency, serve work."""
        if arrivals:
            self.submit(arrivals)
        allowed = self.allowed_concurrency(supply_power)
        self.arbiter.set_power_budget(allowed * self.power_per_task)

        # Progress workers already in service; free their grant when done.
        finished_now = 0
        for worker in list(self._in_service):
            self._in_service[worker] -= 1
            if self._in_service[worker] <= 0:
                self.arbiter.release(worker)
                del self._in_service[worker]
                self._completed += 1
                self._backlog -= 1
                finished_now += 1

        # Ask for workers for queued items, up to the pool size.
        idle_workers = [self._worker_name(i) for i in range(self.max_concurrency)
                        if self._worker_name(i) not in self._in_service
                        and self._worker_name(i) not in self.arbiter.pending
                        and self._worker_name(i) not in self.arbiter.active]
        already_committed = len(self._in_service) + len(self.arbiter.pending)
        wanted = min(self._backlog - already_committed, len(idle_workers))
        for worker in idle_workers[:max(wanted, 0)]:
            self.arbiter.request(worker)

        granted = self.arbiter.arbitrate()
        for worker in granted:
            self._in_service[worker] = self.service_rounds

        record = ConcurrencyRecord(
            step=len(self.records),
            supply_power=supply_power,
            allowed_concurrency=allowed,
            achieved_concurrency=len(self._in_service),
            completed=finished_now,
            backlog=self._backlog,
        )
        self.records.append(record)
        return record

    def run(self, supply_powers: Sequence[float],
            arrivals_per_step: int = 1) -> List[ConcurrencyRecord]:
        """Run one step per entry of *supply_powers* with steady arrivals."""
        return [self.step(power, arrivals=arrivals_per_step)
                for power in supply_powers]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def average_concurrency(self) -> float:
        """Mean achieved degree of concurrency over the run."""
        if not self.records:
            return 0.0
        return (sum(r.achieved_concurrency for r in self.records)
                / len(self.records))

    def average_backlog(self) -> float:
        """Mean queue length over the run (a latency proxy via Little's law)."""
        if not self.records:
            return 0.0
        return sum(r.backlog for r in self.records) / len(self.records)

    def throughput(self) -> float:
        """Completed work items per step over the run."""
        if not self.records:
            return 0.0
        return self._completed / len(self.records)
