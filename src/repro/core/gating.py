"""Power gating: the paper's "strategy one" for spending scavenged energy.

Section II-B describes two strategies for "maximizing the amount of
computational activity for a given quantum of scavenged energy":

1. "switch on/off parts of the circuit under the constant (nominal) voltage"
   — duty-cycled power gating of a conventional (Design 2-like) fabric, the
   approach of the AC-powered FIR filter in reference [4] (wake up, compute,
   shut down every supply cycle);
2. "operate under the variable voltage, but this requires much more robust
   circuits, such as classes of self-timed (asynchronous) logic".

This module provides strategy 1 as a first-class design style so the two can
be compared quantitatively: :class:`PowerGatedDesign` wraps any
:class:`~repro.core.design_styles.DesignStyle` with a sleep transistor model
(residual leakage, wake-up energy and wake-up latency) and exposes the energy
and throughput a given *duty cycle* achieves.  The
:func:`activity_per_quantum` helper answers the paper's actual question —
how much computation one energy quantum buys under each strategy — and is
what the ``EXT3`` benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.design_styles import DesignStyle
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GatingParameters:
    """Sleep-transistor and wake-up overheads of a power-gated domain.

    Parameters
    ----------
    residual_leakage_fraction:
        Fraction of the domain's active leakage that still flows when gated
        (a real header/footer switch does not cut leakage to zero).
    wakeup_energy_per_capacitance:
        Energy, in joules per farad of domain decap/parasitic capacitance,
        spent recharging the virtual rail on every wake-up.
    domain_capacitance:
        Effective capacitance of the gated domain's virtual rail, in farads.
    wakeup_latency:
        Time from de-asserting sleep to the first useful operation, in
        seconds (rush-current limiting makes this non-zero).
    """

    residual_leakage_fraction: float = 0.05
    wakeup_energy_per_capacitance: float = 1.0
    domain_capacitance: float = 5e-12
    wakeup_latency: float = 100e-9

    def __post_init__(self) -> None:
        if not (0.0 <= self.residual_leakage_fraction <= 1.0):
            raise ConfigurationError(
                "residual_leakage_fraction must lie in [0, 1]")
        if self.wakeup_energy_per_capacitance < 0:
            raise ConfigurationError(
                "wakeup_energy_per_capacitance must be non-negative")
        if self.domain_capacitance <= 0:
            raise ConfigurationError("domain_capacitance must be positive")
        if self.wakeup_latency < 0:
            raise ConfigurationError("wakeup_latency must be non-negative")

    def wakeup_energy(self, vdd: float) -> float:
        """Energy of one sleep→active transition at supply *vdd*, in joules."""
        return (self.wakeup_energy_per_capacitance * self.domain_capacitance
                * vdd * vdd)


class PowerGatedDesign(DesignStyle):
    """A conventional fabric duty-cycled behind a sleep switch (strategy 1).

    The wrapped design always runs at its nominal voltage when awake; energy
    is saved by being asleep most of the time.  The style therefore exposes
    the same ``DesignStyle`` interface evaluated *at the nominal voltage*,
    plus duty-cycle-aware helpers used by the strategy comparison.

    Parameters
    ----------
    inner:
        The fabric being gated (typically a
        :class:`~repro.core.design_styles.BundledDataDesign`).
    gating:
        Sleep-switch overheads.
    nominal_vdd:
        The rail the domain runs at whenever it is awake.
    """

    name = "power_gated_nominal_vdd"

    def __init__(self, inner: DesignStyle, gating: Optional[GatingParameters] = None,
                 nominal_vdd: float = 1.0) -> None:
        if nominal_vdd <= 0:
            raise ConfigurationError("nominal_vdd must be positive")
        self.inner = inner
        self.gating = gating or GatingParameters()
        self.nominal_vdd = nominal_vdd
        if not inner.is_functional(nominal_vdd):
            raise ConfigurationError(
                "the gated fabric must be functional at its nominal voltage")

    # ------------------------------------------------------------------
    # DesignStyle interface (evaluated at the fixed nominal rail)
    # ------------------------------------------------------------------

    def is_functional(self, vdd: float) -> bool:
        """The gated domain needs (at least) its nominal rail to wake up."""
        return vdd >= self.nominal_vdd and self.inner.is_functional(self.nominal_vdd)

    def cycle_time(self, vdd: float) -> float:
        """Per-operation time of the awake domain (the rail is regulated)."""
        return self.inner.cycle_time(self.nominal_vdd)

    def energy_per_operation(self, vdd: float) -> float:
        """Per-operation energy of the awake domain at the nominal rail."""
        return self.inner.energy_per_operation(self.nominal_vdd)

    def leakage_power(self, vdd: float) -> float:
        """Leakage of the *gated* (sleeping) domain — the residual fraction."""
        return (self.gating.residual_leakage_fraction
                * self.inner.leakage_power(self.nominal_vdd))

    def minimum_operating_voltage(self, resolution: float = 0.005,
                                  vdd_max: Optional[float] = None) -> float:
        """The nominal rail: below it the domain simply stays asleep."""
        return self.nominal_vdd

    # ------------------------------------------------------------------
    # Duty-cycle accounting
    # ------------------------------------------------------------------

    def awake_leakage_power(self) -> float:
        """Leakage while awake (the full, ungated figure), in watts."""
        return self.inner.leakage_power(self.nominal_vdd)

    def operations_per_burst(self, awake_time: float) -> float:
        """Operations one wake burst of *awake_time* seconds can perform."""
        if awake_time < 0:
            raise ConfigurationError("awake_time must be non-negative")
        useful = max(0.0, awake_time - self.gating.wakeup_latency)
        return useful / self.inner.cycle_time(self.nominal_vdd)

    def burst_energy(self, awake_time: float) -> float:
        """Total energy of one wake burst: wake-up + switching + leakage."""
        operations = self.operations_per_burst(awake_time)
        switching = operations * self.inner.energy_per_operation(self.nominal_vdd)
        leakage = self.awake_leakage_power() * awake_time
        return self.gating.wakeup_energy(self.nominal_vdd) + switching + leakage

    def activity_per_quantum(self, energy_quantum: float,
                             period: float) -> float:
        """Operations one energy quantum buys per gating *period* (strategy 1).

        The quantum first pays the sleep leakage for the whole period and the
        wake-up cost; whatever remains buys awake time (switching plus awake
        leakage) at the nominal voltage, bounded by the period itself.
        """
        if energy_quantum < 0:
            raise ConfigurationError("energy_quantum must be non-negative")
        if period <= 0:
            raise ConfigurationError("period must be positive")
        sleep_tax = self.leakage_power(self.nominal_vdd) * period
        budget = energy_quantum - sleep_tax - self.gating.wakeup_energy(self.nominal_vdd)
        if budget <= 0:
            return 0.0
        energy_per_second_awake = (
            self.inner.energy_per_operation(self.nominal_vdd)
            / self.inner.cycle_time(self.nominal_vdd)
            + self.awake_leakage_power())
        awake_time = min(budget / energy_per_second_awake,
                         period - self.gating.wakeup_latency)
        return max(0.0, self.operations_per_burst(awake_time
                                                  + self.gating.wakeup_latency))


def voltage_scaled_activity_per_quantum(design: DesignStyle,
                                        energy_quantum: float,
                                        period: float,
                                        vdd_grid_steps: int = 60,
                                        vdd_max: float = 1.0) -> float:
    """Operations one energy quantum buys under strategy 2 (variable voltage).

    The self-timed fabric may run the whole period at whichever (functional)
    voltage spends the quantum best: for each candidate voltage the quantum
    pays that voltage's leakage for the period and buys operations at that
    voltage's energy/op, bounded by the throughput available in the period.
    Returns the best achievable operation count.
    """
    if energy_quantum < 0:
        raise ConfigurationError("energy_quantum must be non-negative")
    if period <= 0:
        raise ConfigurationError("period must be positive")
    if vdd_grid_steps < 2:
        raise ConfigurationError("vdd_grid_steps must be >= 2")
    floor = design.minimum_operating_voltage()
    best = 0.0
    for i in range(vdd_grid_steps):
        vdd = floor + (vdd_max - floor) * i / (vdd_grid_steps - 1)
        if not design.is_functional(vdd):
            continue
        budget = energy_quantum - design.leakage_power(vdd) * period
        if budget <= 0:
            continue
        by_energy = budget / design.energy_per_operation(vdd)
        by_time = period / design.cycle_time(vdd)
        best = max(best, min(by_energy, by_time))
    return best
