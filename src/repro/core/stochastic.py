"""Stochastic analysis of power, latency and the degree of concurrency.

Reference [12] of the paper ("Stochastic Analysis of power, latency and the
degree of concurrency", ISCAS 2010) characterises energy-modulated multi-core
/ multi-task systems with queueing models: jobs arrive at some rate, the
system runs a configurable number of concurrent servers (cores, or degrees of
unfolded concurrency in an asynchronous fabric), and both the latency a job
experiences and the power the system draws depend on that degree of
concurrency.  The design question the paper cares about is the trade-off:
more concurrency shortens queues but draws more power; less concurrency saves
power but queues work — which is exactly the elasticity the soft arbiter of
:mod:`repro.core.arbitration` exploits at run time.

This module provides the closed-form side of that story:

* :class:`PowerLatencyModel` — an M/M/c queue with a per-server power model
  (static + utilisation-proportional dynamic power);
* :class:`ConcurrencyAnalysis` — sweeps the degree of concurrency, finds the
  feasible region, the latency-optimal and the power-latency-product-optimal
  operating points, and produces the series a designer would plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


@dataclass
class OperatingPoint:
    """One evaluated degree of concurrency."""

    servers: int
    utilisation: float
    mean_latency: float
    mean_queue_length: float
    power: float
    stable: bool

    @property
    def power_latency_product(self) -> float:
        """Power × latency — the figure of merit minimised by a balanced design."""
        if not self.stable:
            return float("inf")
        return self.power * self.mean_latency

    @property
    def energy_per_job(self) -> float:
        """System power integrated over one job's mean sojourn time, in joules."""
        return self.power * self.mean_latency if self.stable else float("inf")


class PowerLatencyModel:
    """An M/M/c queue with a static + dynamic per-server power model.

    Parameters
    ----------
    arrival_rate:
        Mean job arrival rate λ (jobs per second).
    service_rate:
        Mean per-server service rate μ (jobs per second per server).
    static_power_per_server:
        Power a powered-on server draws even when idle, in watts.
    dynamic_power_per_server:
        Additional power a server draws while busy, in watts.
    """

    def __init__(self, arrival_rate: float, service_rate: float,
                 static_power_per_server: float = 1e-6,
                 dynamic_power_per_server: float = 10e-6) -> None:
        if arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if service_rate <= 0:
            raise ConfigurationError("service_rate must be positive")
        if static_power_per_server < 0 or dynamic_power_per_server < 0:
            raise ConfigurationError("power figures must be non-negative")
        self.arrival_rate = arrival_rate
        self.service_rate = service_rate
        self.static_power_per_server = static_power_per_server
        self.dynamic_power_per_server = dynamic_power_per_server

    # ------------------------------------------------------------------
    # Queueing quantities
    # ------------------------------------------------------------------

    def minimum_servers(self) -> int:
        """Smallest degree of concurrency for which the queue is stable."""
        return int(math.floor(self.arrival_rate / self.service_rate)) + 1

    def utilisation(self, servers: int) -> float:
        """Offered load per server, ρ = λ / (c·μ)."""
        self._check_servers(servers)
        return self.arrival_rate / (servers * self.service_rate)

    def is_stable(self, servers: int) -> bool:
        """Whether the queue is stable (ρ < 1) at this degree of concurrency."""
        return self.utilisation(servers) < 1.0

    def erlang_c(self, servers: int) -> float:
        """Probability an arriving job must wait (the Erlang-C formula)."""
        self._check_servers(servers)
        if not self.is_stable(servers):
            return 1.0
        a = self.arrival_rate / self.service_rate  # offered load in Erlangs
        rho = self.utilisation(servers)
        # Numerically stable iterative evaluation of the Erlang-B recursion,
        # then conversion to Erlang C.
        inv_b = 1.0
        for k in range(1, servers + 1):
            inv_b = 1.0 + inv_b * k / a
        b = 1.0 / inv_b
        return b / (1.0 - rho * (1.0 - b))

    def mean_waiting_time(self, servers: int) -> float:
        """Mean time a job spends queueing before service, in seconds."""
        if not self.is_stable(servers):
            return float("inf")
        wait_prob = self.erlang_c(servers)
        return wait_prob / (servers * self.service_rate - self.arrival_rate)

    def mean_latency(self, servers: int) -> float:
        """Mean total sojourn time (queueing + service), in seconds."""
        if not self.is_stable(servers):
            return float("inf")
        return self.mean_waiting_time(servers) + 1.0 / self.service_rate

    def mean_queue_length(self, servers: int) -> float:
        """Mean number of jobs in the system (Little's law)."""
        latency = self.mean_latency(servers)
        if math.isinf(latency):
            return float("inf")
        return self.arrival_rate * latency

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------

    def power(self, servers: int) -> float:
        """Mean power drawn with *servers* powered on, in watts."""
        self._check_servers(servers)
        rho = min(self.utilisation(servers), 1.0)
        busy = servers * rho
        return (servers * self.static_power_per_server
                + busy * self.dynamic_power_per_server)

    def operating_point(self, servers: int) -> OperatingPoint:
        """Evaluate every metric at one degree of concurrency."""
        stable = self.is_stable(servers)
        return OperatingPoint(
            servers=servers,
            utilisation=self.utilisation(servers),
            mean_latency=self.mean_latency(servers),
            mean_queue_length=self.mean_queue_length(servers),
            power=self.power(servers),
            stable=stable,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _check_servers(servers: int) -> None:
        if servers < 1:
            raise ConfigurationError("servers must be >= 1")


class ConcurrencyAnalysis:
    """Sweep the degree of concurrency of a :class:`PowerLatencyModel`."""

    def __init__(self, model: PowerLatencyModel, max_servers: int = 32) -> None:
        if max_servers < 1:
            raise ConfigurationError("max_servers must be >= 1")
        self.model = model
        self.max_servers = max_servers

    def sweep(self, servers: Optional[Sequence[int]] = None) -> List[OperatingPoint]:
        """Evaluate each candidate degree of concurrency."""
        if servers is None:
            servers = range(1, self.max_servers + 1)
        points = [self.model.operating_point(int(c)) for c in servers]
        if not points:
            raise ConfigurationError("the sweep needs at least one server count")
        return points

    def feasible_points(self,
                        latency_budget: Optional[float] = None,
                        power_budget: Optional[float] = None,
                        servers: Optional[Sequence[int]] = None,
                        ) -> List[OperatingPoint]:
        """Stable points meeting the optional latency and power budgets."""
        selected = []
        for point in self.sweep(servers):
            if not point.stable:
                continue
            if latency_budget is not None and point.mean_latency > latency_budget:
                continue
            if power_budget is not None and point.power > power_budget:
                continue
            selected.append(point)
        return selected

    def latency_optimal(self, servers: Optional[Sequence[int]] = None) -> OperatingPoint:
        """The degree of concurrency with the lowest mean latency."""
        return min(self.sweep(servers), key=lambda p: p.mean_latency)

    def balanced_optimal(self, servers: Optional[Sequence[int]] = None) -> OperatingPoint:
        """The degree of concurrency minimising the power-latency product."""
        return min(self.sweep(servers), key=lambda p: p.power_latency_product)

    def minimum_power_feasible(self, latency_budget: float,
                               servers: Optional[Sequence[int]] = None,
                               ) -> Optional[OperatingPoint]:
        """Cheapest stable point meeting *latency_budget*, or ``None``."""
        feasible = self.feasible_points(latency_budget=latency_budget,
                                        servers=servers)
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.power)

    def concurrency_for_power(self, power_budget: float,
                              servers: Optional[Sequence[int]] = None) -> int:
        """Largest degree of concurrency affordable under *power_budget*."""
        affordable = [p.servers for p in self.sweep(servers)
                      if p.power <= power_budget]
        return max(affordable) if affordable else 0


def simulate_mmc(model: PowerLatencyModel, servers: int, jobs: int = 2000,
                 seed: int = 0) -> OperatingPoint:
    """Monte-Carlo check of the analytical M/M/c results.

    Simulates *jobs* Poisson arrivals through a *servers*-server FCFS queue
    with exponential service times and returns the empirical operating point
    (used by the test-suite to validate the closed forms, and available to
    users who want confidence intervals).
    """
    import numpy as np

    if servers < 1:
        raise ConfigurationError("servers must be >= 1")
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    rng = np.random.default_rng(seed)
    inter_arrivals = rng.exponential(1.0 / model.arrival_rate, size=jobs)
    services = rng.exponential(1.0 / model.service_rate, size=jobs)
    arrivals = np.cumsum(inter_arrivals)
    server_free = np.zeros(servers)
    latencies = np.empty(jobs)
    busy_time = 0.0
    for i in range(jobs):
        idx = int(np.argmin(server_free))
        start = max(arrivals[i], server_free[idx])
        finish = start + services[i]
        server_free[idx] = finish
        latencies[i] = finish - arrivals[i]
        busy_time += services[i]
    horizon = float(max(server_free.max(), arrivals[-1]))
    utilisation = busy_time / (servers * horizon) if horizon > 0 else 0.0
    mean_latency = float(latencies.mean())
    power = (servers * model.static_power_per_server
             + servers * utilisation * model.dynamic_power_per_server)
    return OperatingPoint(
        servers=servers,
        utilisation=utilisation,
        mean_latency=mean_latency,
        mean_queue_length=model.arrival_rate * mean_latency,
        power=power,
        stable=model.is_stable(servers),
    )


#: Names of the scalars :func:`operating_point_metrics` reports (the EXT2
#: plan's quantity set).
OPERATING_POINT_METRICS = ("utilisation", "mean_latency", "mean_queue_length",
                           "power", "power_latency_product", "stable")


def operating_point_metrics(model: PowerLatencyModel,
                            servers: float) -> dict:
    """All EXT2 quantities at one degree of concurrency.

    The per-point evaluation of a concurrency-sweep experiment plan:
    *servers* arrives as the plan's (float) axis value and is rounded to
    the integer core count.  Unstable points report infinite latency and
    products, never an exception — the sweep itself locates the stable
    region.
    """
    point = model.operating_point(int(round(servers)))
    return {
        "utilisation": point.utilisation,
        "mean_latency": point.mean_latency,
        "mean_queue_length": point.mean_queue_length,
        "power": point.power,
        "power_latency_product": point.power_latency_product,
        "stable": float(point.stable),
    }
