"""Quality-of-service metrics and QoS-versus-supply curves.

Fig. 2 of the paper plots "QoS" against the power supply level for two design
styles; the library makes that plot concrete by defining QoS as delivered
throughput (operations per second), normalised if desired to a reference
point, and by providing :func:`qos_vs_vdd` to sweep any design style object
that exposes ``throughput(vdd)`` and ``is_functional(vdd)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class QoSMetric(enum.Enum):
    """Supported quality-of-service definitions."""

    #: Delivered operations per second.
    THROUGHPUT = "throughput"
    #: Inverse latency of a single operation.
    RESPONSIVENESS = "responsiveness"
    #: Operations delivered per joule (energy efficiency as a service metric).
    OPERATIONS_PER_JOULE = "operations_per_joule"


@dataclass
class QoSCurve:
    """A sampled QoS-versus-Vdd curve for one design."""

    design_name: str
    metric: QoSMetric
    points: List[Tuple[float, float]]  # (vdd, qos); qos = 0 where non-functional

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("a QoS curve needs at least one point")

    # ------------------------------------------------------------------

    def qos_at(self, vdd: float) -> float:
        """QoS at the sampled voltage nearest to *vdd*."""
        return min(self.points, key=lambda p: abs(p[0] - vdd))[1]

    def onset_voltage(self) -> Optional[float]:
        """Lowest Vdd at which any QoS is delivered (Fig. 2's key feature)."""
        delivering = [vdd for vdd, qos in self.points if qos > 0]
        return min(delivering) if delivering else None

    def peak(self) -> Tuple[float, float]:
        """(vdd, qos) of the best point on the curve."""
        return max(self.points, key=lambda p: p[1])

    def normalised(self, reference_qos: Optional[float] = None) -> "QoSCurve":
        """Return a copy scaled so the reference (or peak) QoS equals 1."""
        if reference_qos is None:
            reference_qos = self.peak()[1]
        if reference_qos <= 0:
            raise ConfigurationError("reference_qos must be positive")
        return QoSCurve(
            design_name=self.design_name,
            metric=self.metric,
            points=[(v, q / reference_qos) for v, q in self.points],
        )

    def efficiency_slope(self, vdd_low: float, vdd_high: float) -> float:
        """ΔQoS/ΔVdd between two supply levels — the "power efficiency" of Fig. 2.

        A design that converts additional supply headroom into a lot of extra
        QoS (Design 2 at nominal voltage) has a steep slope; a conservative
        design (Design 1) has a shallower one.
        """
        if vdd_high <= vdd_low:
            raise ConfigurationError("vdd_high must exceed vdd_low")
        return (self.qos_at(vdd_high) - self.qos_at(vdd_low)) / (vdd_high - vdd_low)


def qos_point(design, vdd: float,
              metric: QoSMetric = QoSMetric.THROUGHPUT,
              energy_fn: Optional[Callable[[float], float]] = None) -> float:
    """QoS of *design* at one supply level; zero where it cannot function.

    This is the single definition of every :class:`QoSMetric` — the
    per-point kernel of :func:`qos_vs_vdd` and the quantity the declarative
    experiment plans evaluate, so a benchmark and the library can never
    disagree on what "QoS" means.
    """
    vdd = float(vdd)
    if not design.is_functional(vdd):
        return 0.0
    if hasattr(design, "throughput"):
        throughput = design.throughput(vdd)
    else:
        throughput = 1.0 / design.cycle_time(vdd)
    if metric is QoSMetric.THROUGHPUT:
        return throughput
    if metric is QoSMetric.RESPONSIVENESS:
        return throughput  # single-token latency inverse equals throughput here
    if energy_fn is None:
        energy_fn = getattr(design, "energy_per_operation")
    energy = energy_fn(vdd)
    return 1.0 / energy if energy > 0 else 0.0


def qos_vs_vdd(design, vdd_values: Sequence[float],
               metric: QoSMetric = QoSMetric.THROUGHPUT,
               energy_fn: Optional[Callable[[float], float]] = None) -> QoSCurve:
    """Sweep *design* over *vdd_values* and build its :class:`QoSCurve`.

    *design* must provide ``throughput(vdd)`` (or ``cycle_time(vdd)``) and
    ``is_functional(vdd)``; non-functional voltages contribute zero QoS —
    that is precisely how Design 2's "cannot deliver at all" region shows up
    in Fig. 2.
    """
    if len(vdd_values) == 0:
        raise ConfigurationError("vdd_values must not be empty")
    points: List[Tuple[float, float]] = [
        (float(vdd), qos_point(design, vdd, metric, energy_fn))
        for vdd in vdd_values]
    name = getattr(design, "name", design.__class__.__name__)
    return QoSCurve(design_name=name, metric=metric, points=points)
