"""Energy-token task scheduling (paper reference [15], Section IV).

The paper's conclusion lists "task scheduling according to the power profile"
as one half of the two-way adaptation a power-adaptive system needs, and
cites the energy-token model [15] as the formalism.  This module turns that
sketch into a runnable scheduler:

* a :class:`Task` is a unit of computation with an energy cost, a duration,
  a value (the QoS it contributes) and optional dependencies and deadline;
* the :class:`EnergyTokenScheduler` drives an
  :class:`~repro.core.energy_tokens.EnergyTokenNet` forward in discrete time
  slots, depositing whatever energy the supply profile provides in each slot
  and choosing which ready task to spend tokens on according to a
  :class:`SchedulingPolicy`;
* the :class:`ScheduleResult` records when each task ran, which deadlines
  were missed and how much of the harvested energy turned into useful work.

The point the paper makes — "maximize the amount of computational activity
for a given quantum of scavenged energy" — shows up here as the difference
between policies: a value-per-energy (greedy-efficiency) policy extracts more
useful work from the same energy trace than FIFO or deadline-only policies
when energy, not time, is the binding constraint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.energy_tokens import EnergyTokenNet
from repro.errors import ConfigurationError, SchedulerError


class SchedulingPolicy(enum.Enum):
    """Supported orderings for choosing among ready, energy-enabled tasks."""

    #: First-come-first-served in task declaration order.
    FIFO = "fifo"
    #: Earliest deadline first (tasks without deadlines go last).
    EARLIEST_DEADLINE = "edf"
    #: Highest value per energy token first — the energy-frugal policy.
    VALUE_PER_ENERGY = "value_per_energy"
    #: Cheapest task first (minimum energy tokens).
    CHEAPEST_FIRST = "cheapest_first"


@dataclass
class Task:
    """A schedulable unit of computation.

    Parameters
    ----------
    name:
        Unique task identifier.
    energy:
        Energy the task consumes when it runs, in joules.
    duration:
        Wall-clock slots the task occupies once started.
    value:
        Useful work / QoS contribution of completing the task.
    deadline:
        Optional absolute slot index by which the task must *finish*.
    depends_on:
        Names of tasks that must complete before this one may start.
    periodic_every:
        If set, the task re-arms this many slots after each completion
        (a sensing/communication duty cycle).
    """

    name: str
    energy: float
    duration: int = 1
    value: float = 1.0
    deadline: Optional[int] = None
    depends_on: Sequence[str] = field(default_factory=tuple)
    periodic_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.energy < 0:
            raise ConfigurationError("task energy must be non-negative")
        if self.duration < 1:
            raise ConfigurationError("task duration must be >= 1 slot")
        if self.value < 0:
            raise ConfigurationError("task value must be non-negative")
        if self.deadline is not None and self.deadline < 0:
            raise ConfigurationError("deadline must be non-negative")
        if self.periodic_every is not None and self.periodic_every < 1:
            raise ConfigurationError("periodic_every must be >= 1")


@dataclass
class TaskRun:
    """One completed execution of a task."""

    task: str
    start_slot: int
    finish_slot: int
    energy: float
    value: float
    met_deadline: bool


@dataclass
class ScheduleResult:
    """Outcome of a scheduling run."""

    policy: SchedulingPolicy
    slots_elapsed: int
    runs: List[TaskRun]
    energy_offered: float
    energy_spent: float
    energy_left_stored: float
    missed_deadlines: List[str]
    unfinished_tasks: List[str]

    @property
    def completed_tasks(self) -> List[str]:
        """Names of tasks that ran to completion at least once."""
        return [run.task for run in self.runs]

    @property
    def total_value(self) -> float:
        """Sum of the value of every completed run."""
        return sum(run.value for run in self.runs)

    @property
    def value_per_joule(self) -> float:
        """Useful value extracted per joule of offered energy."""
        if self.energy_offered <= 0:
            return 0.0
        return self.total_value / self.energy_offered

    @property
    def energy_utilisation(self) -> float:
        """Fraction of offered energy that was actually spent on tasks."""
        if self.energy_offered <= 0:
            return 0.0
        return self.energy_spent / self.energy_offered


class EnergyTokenScheduler:
    """Schedule tasks against a time-varying energy supply.

    Parameters
    ----------
    tasks:
        The task set.
    joules_per_token:
        Energy quantum of the underlying token net.
    storage_capacity:
        Optional bound, in joules, on how much unspent energy can be banked
        between slots (a supercapacitor is finite); ``None`` means unbounded.
    policy:
        Which :class:`SchedulingPolicy` to use when several tasks are ready.
    """

    def __init__(self, tasks: Sequence[Task],
                 joules_per_token: float = 1e-9,
                 storage_capacity: Optional[float] = None,
                 policy: SchedulingPolicy = SchedulingPolicy.VALUE_PER_ENERGY,
                 name: str = "scheduler") -> None:
        if not tasks:
            raise ConfigurationError("the task set must not be empty")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError("task names must be unique")
        for task in tasks:
            for dep in task.depends_on:
                if dep not in names:
                    raise ConfigurationError(
                        f"task {task.name!r} depends on unknown task {dep!r}")
        self.name = name
        self.tasks: Dict[str, Task] = {task.name: task for task in tasks}
        self.policy = policy
        self.joules_per_token = joules_per_token
        capacity_tokens = None
        if storage_capacity is not None:
            if storage_capacity <= 0:
                raise ConfigurationError("storage_capacity must be positive")
            capacity_tokens = max(1, int(storage_capacity / joules_per_token))
        self.net = EnergyTokenNet(joules_per_token=joules_per_token,
                                  energy_capacity_tokens=capacity_tokens,
                                  name=f"{name}.net")
        self._build_net()

    # ------------------------------------------------------------------
    # Net construction
    # ------------------------------------------------------------------

    def _build_net(self) -> None:
        """One ready-place and one done-place per task; deps gate readiness."""
        for task in self.tasks.values():
            self.net.add_place(f"ready::{task.name}", tokens=0)
            self.net.add_place(f"done::{task.name}", tokens=0)
        for task in self.tasks.values():
            inputs: Dict[str, int] = {f"ready::{task.name}": 1}
            for dep in task.depends_on:
                inputs[f"done::{dep}"] = 1
            # Dependency done-tokens are read-only: give them straight back.
            # The task's own done-token is deposited by the scheduler when the
            # run *completes* (after `duration` slots), not when it starts.
            outputs: Dict[str, int] = {f"done::{dep}": 1 for dep in task.depends_on}
            self.net.add_energy_transition(
                name=f"run::{task.name}",
                inputs=inputs,
                outputs=outputs,
                energy_tokens=self.tokens_for(task),
                useful_work=task.value,
            )
        # Arm every task once at the start.
        for task in self.tasks.values():
            self.net.places[f"ready::{task.name}"].add(1)

    def tokens_for(self, task: Task) -> int:
        """Energy cost of *task* expressed in whole tokens (rounded up)."""
        if task.energy <= 0:
            return 0
        tokens = int(task.energy / self.joules_per_token)
        if tokens * self.joules_per_token < task.energy - 1e-18:
            tokens += 1
        return max(tokens, 1)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def run(self, energy_profile: Sequence[float],
            slots: Optional[int] = None) -> ScheduleResult:
        """Schedule over *slots* time slots with the given per-slot energy.

        ``energy_profile[i]`` is the energy, in joules, harvested during slot
        ``i``; a shorter profile than *slots* is padded with zeros (drought).
        """
        if slots is None:
            slots = len(energy_profile)
        if slots < 1:
            raise ConfigurationError("need at least one slot")

        runs: List[TaskRun] = []
        missed: List[str] = []
        in_flight: Dict[str, int] = {}  # task name -> remaining slots
        started_at: Dict[str, int] = {}
        rearm_at: Dict[str, int] = {}

        for slot in range(slots):
            harvested = energy_profile[slot] if slot < len(energy_profile) else 0.0
            if harvested < 0:
                raise SchedulerError(f"negative energy in slot {slot}")
            self.net.deposit_energy(harvested)

            # Re-arm periodic tasks whose period has elapsed.
            for task_name, when in list(rearm_at.items()):
                if slot >= when:
                    self.net.places[f"ready::{task_name}"].add(1)
                    del rearm_at[task_name]

            # Progress tasks already running.
            for task_name in list(in_flight):
                in_flight[task_name] -= 1
                if in_flight[task_name] <= 0:
                    task = self.tasks[task_name]
                    finish = slot
                    self.net.places[f"done::{task_name}"].add(1)
                    met = task.deadline is None or finish <= task.deadline
                    runs.append(TaskRun(
                        task=task_name,
                        start_slot=started_at[task_name],
                        finish_slot=finish,
                        energy=self.tokens_for(task) * self.joules_per_token,
                        value=task.value,
                        met_deadline=met,
                    ))
                    if not met:
                        missed.append(task_name)
                    if task.periodic_every is not None:
                        rearm_at[task_name] = started_at[task_name] + task.periodic_every
                    del in_flight[task_name]
                    del started_at[task_name]

            # Start new tasks while energy and readiness allow.
            while True:
                candidates = self._startable(in_flight)
                if not candidates:
                    break
                chosen = self._select(candidates, slot)
                self.net.fire(f"run::{chosen.name}")
                in_flight[chosen.name] = chosen.duration
                started_at[chosen.name] = slot

        unfinished = sorted(set(self.tasks) - {run.task for run in runs})
        return ScheduleResult(
            policy=self.policy,
            slots_elapsed=slots,
            runs=runs,
            energy_offered=self.net.energy_deposited,
            energy_spent=self.net.energy_spent,
            energy_left_stored=self.net.stored_energy,
            missed_deadlines=missed,
            unfinished_tasks=unfinished,
        )

    # ------------------------------------------------------------------
    # Policy machinery
    # ------------------------------------------------------------------

    def _startable(self, in_flight: Dict[str, int]) -> List[Task]:
        """Tasks whose net transition is enabled and that are not running."""
        ready: List[Task] = []
        for task in self.tasks.values():
            if task.name in in_flight:
                continue
            if self.net.is_enabled(f"run::{task.name}"):
                ready.append(task)
        return ready

    def _select(self, candidates: List[Task], slot: int) -> Task:
        """Pick one task from *candidates* according to the policy."""
        if self.policy is SchedulingPolicy.FIFO:
            order = list(self.tasks)
            return min(candidates, key=lambda t: order.index(t.name))
        if self.policy is SchedulingPolicy.EARLIEST_DEADLINE:
            far = float("inf")
            return min(candidates,
                       key=lambda t: (t.deadline if t.deadline is not None else far,
                                      t.name))
        if self.policy is SchedulingPolicy.CHEAPEST_FIRST:
            return min(candidates, key=lambda t: (self.tokens_for(t), t.name))
        # VALUE_PER_ENERGY: maximise value per token; free tasks first.
        def efficiency(task: Task) -> float:
            tokens = self.tokens_for(task)
            if tokens == 0:
                return float("inf")
            return task.value / tokens
        return max(candidates, key=lambda t: (efficiency(t), -self.tokens_for(t),
                                              t.name))


def run_policy(tasks: Sequence[Task], energy_profile: Sequence[float],
               policy: SchedulingPolicy,
               joules_per_token: float = 1e-9,
               storage_capacity: Optional[float] = None) -> ScheduleResult:
    """Run the workload under one *policy* — one point of an EXT1-style plan.

    Tasks are re-instantiated per run so repeated evaluations (and pool
    workers) never share mutable task state; for a fixed argument set the
    result is deterministic.
    """
    scheduler = EnergyTokenScheduler(
        tasks=[Task(**_task_fields(t)) for t in tasks],
        joules_per_token=joules_per_token,
        storage_capacity=storage_capacity,
        policy=policy,
    )
    return scheduler.run(energy_profile)


#: Names of the scalars :func:`schedule_metrics` extracts from one
#: :class:`ScheduleResult` (the EXT1 plan's quantity set).
SCHEDULE_METRICS = ("runs", "total_value", "energy_offered", "energy_spent",
                    "energy_utilisation", "missed_deadlines",
                    "unfinished_tasks", "value_per_joule",
                    "energy_left_stored")


def schedule_metrics(result: ScheduleResult) -> Dict[str, float]:
    """Scalar summary of one scheduling run, keyed by
    :data:`SCHEDULE_METRICS`."""
    return {
        "runs": float(len(result.runs)),
        "total_value": result.total_value,
        "energy_offered": result.energy_offered,
        "energy_spent": result.energy_spent,
        "energy_utilisation": result.energy_utilisation,
        "missed_deadlines": float(len(result.missed_deadlines)),
        "unfinished_tasks": float(len(result.unfinished_tasks)),
        "value_per_joule": result.value_per_joule,
        "energy_left_stored": result.energy_left_stored,
    }


def compare_policies(tasks: Sequence[Task], energy_profile: Sequence[float],
                     joules_per_token: float = 1e-9,
                     storage_capacity: Optional[float] = None,
                     policies: Optional[Sequence[SchedulingPolicy]] = None,
                     ) -> Dict[SchedulingPolicy, ScheduleResult]:
    """Run the same workload under several policies and collect the results."""
    if policies is None:
        policies = list(SchedulingPolicy)
    return {policy: run_policy(tasks, energy_profile, policy,
                               joules_per_token=joules_per_token,
                               storage_capacity=storage_capacity)
            for policy in policies}


def _task_fields(task: Task) -> Dict[str, object]:
    """Copy a task's constructor fields (tasks are re-instantiated per run)."""
    return {
        "name": task.name,
        "energy": task.energy,
        "duration": task.duration,
        "value": task.value,
        "deadline": task.deadline,
        "depends_on": tuple(task.depends_on),
        "periodic_every": task.periodic_every,
    }
