"""The holistic power-adaptive control loop (paper Fig. 3).

The paper argues that a "truly energy-modulated design has to be
power-adaptive", and that power adaptation "requires good knowledge of the
actual power level at run-time, which itself calls for good power meters".
Fig. 3 sketches the resulting closed loop:

``harvester → power chain → [voltage sensor] → controller → {supply set-point,
operating mode, admitted load}``

:class:`PowerAdaptiveController` implements that loop against any
:class:`~repro.power.power_chain.PowerChain`-like object.  Each control step
it

1. *senses* the storage/rail voltage (through a sensor object from
   :mod:`repro.sensors`, or ideally if none is supplied);
2. *decides* an operating point — the regulated rail voltage and, for a
   :class:`~repro.core.design_styles.HybridDesign`, implicitly the design
   style that will be active at that voltage;
3. *actuates* the DC-DC converter set-point and reports how much load
   (operations) the computational fabric may admit during the next interval.

The decision rule is the paper's strategy discussion in Section II-B: when
the energy store is depleted, drop to the most power-proportional operating
point (lowest functional Vdd — Design 1 territory); when the store is full,
raise the rail towards the nominal voltage where the efficient style
(Design 2) delivers peak QoS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from repro.errors import ConfigurationError, PowerError
from repro.units import clamp, lerp

#: Names of the per-run scalar summaries :func:`loop_metrics` reports —
#: the quantity set of a Fig. 3 style closed-loop experiment plan.
LOOP_METRICS = ("operations", "energy_harvested", "energy_consumed",
                "average_rail_voltage", "min_stored_energy")


class VoltageSensor(Protocol):
    """Anything that can report a voltage measurement for a true voltage."""

    def measure(self, vdd: float) -> float:
        """Return the measured value (volts) for the true voltage *vdd*."""


@dataclass
class AdaptationRecord:
    """One step of the closed-loop adaptation (one row of a Fig. 3 trace)."""

    time: float
    store_voltage: float
    measured_voltage: float
    rail_voltage: float
    target_voltage: float
    admitted_operations: int
    active_design: str
    stored_energy: float

    @property
    def sensing_error(self) -> float:
        """Absolute sensing error of this step, in volts."""
        return abs(self.measured_voltage - self.store_voltage)


@dataclass
class AdaptationPolicy:
    """Thresholds and set-points for the store-voltage governed policy.

    The store voltage is the controller's proxy for "how much energy do we
    have banked"; the policy maps it to a rail set-point between
    ``vdd_floor`` (survival / most power-proportional point) and
    ``vdd_nominal`` (full-performance point).
    """

    store_low: float = 1.0
    store_high: float = 2.5
    vdd_floor: float = 0.25
    vdd_nominal: float = 1.0
    max_operations_per_step: int = 1_000_000

    def __post_init__(self) -> None:
        if self.store_low >= self.store_high:
            raise ConfigurationError("store_low must be below store_high")
        if self.vdd_floor >= self.vdd_nominal:
            raise ConfigurationError("vdd_floor must be below vdd_nominal")
        if self.max_operations_per_step < 0:
            raise ConfigurationError("max_operations_per_step must be >= 0")

    def target_voltage(self, store_voltage: float) -> float:
        """Rail set-point for a given (measured) store voltage."""
        if store_voltage <= self.store_low:
            return self.vdd_floor
        if store_voltage >= self.store_high:
            return self.vdd_nominal
        return lerp(store_voltage, self.store_low, self.store_high,
                    self.vdd_floor, self.vdd_nominal)


class PowerAdaptiveController:
    """Closed-loop, sensor-driven power adaptation (Fig. 3).

    Parameters
    ----------
    chain:
        The power chain to govern.  It must expose ``store.voltage(time)``,
        ``output_rail.voltage(time)``, ``set_output_voltage(v)`` and
        ``advance(duration)``.
    design:
        The computational fabric, any
        :class:`~repro.core.design_styles.DesignStyle`.  Its throughput at
        the chosen rail voltage bounds the admitted load.
    sensor:
        Optional voltage sensor used to *measure* the store voltage; when
        omitted the controller reads the store directly (ideal metering).
    policy:
        The :class:`AdaptationPolicy` thresholds.
    step_interval:
        Length of one control step in seconds.
    """

    def __init__(self, chain, design, sensor: Optional[VoltageSensor] = None,
                 policy: Optional[AdaptationPolicy] = None,
                 step_interval: float = 0.01) -> None:
        if step_interval <= 0:
            raise ConfigurationError("step_interval must be positive")
        self.chain = chain
        self.design = design
        self.sensor = sensor
        self.policy = policy or AdaptationPolicy()
        self.step_interval = step_interval
        self.records: List[AdaptationRecord] = []
        self._operations_done = 0
        self._energy_consumed = 0.0

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------

    @property
    def operations_done(self) -> int:
        """Operations admitted (and executed) over the whole run."""
        return self._operations_done

    @property
    def energy_consumed(self) -> float:
        """Energy drawn from the rail by admitted operations, in joules."""
        return self._energy_consumed

    def trace(self) -> List[AdaptationRecord]:
        """All adaptation records so far (one per control step)."""
        return list(self.records)

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------

    def sense(self, time: float) -> float:
        """Measure the store voltage at *time* through the sensor (if any)."""
        true_voltage = self.chain.store.voltage(time)
        if self.sensor is None:
            return true_voltage
        sensed = self.sensor.measure(true_voltage)
        return max(0.0, sensed)

    def decide(self, measured_store_voltage: float) -> float:
        """Map a measured store voltage to the next rail set-point."""
        target = self.policy.target_voltage(measured_store_voltage)
        return clamp(target, self.policy.vdd_floor, self.policy.vdd_nominal)

    def step(self, duration: Optional[float] = None) -> AdaptationRecord:
        """Run one sense → decide → actuate → execute control step."""
        duration = self.step_interval if duration is None else duration
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        now = self.chain.time
        store_voltage = self.chain.store.voltage(now)
        measured = self.sense(now)
        target = self.decide(measured)
        self.chain.set_output_voltage(target)

        # Let the environment (harvesting, converter losses) move forward.
        self.chain.advance(duration)
        after = self.chain.time
        rail_voltage = self.chain.output_rail.voltage(after)

        admitted = self._execute_load(rail_voltage, duration, after)

        record = AdaptationRecord(
            time=after,
            store_voltage=store_voltage,
            measured_voltage=measured,
            rail_voltage=rail_voltage,
            target_voltage=target,
            admitted_operations=admitted,
            active_design=self._active_design_name(rail_voltage),
            stored_energy=self.chain.store.stored_energy(after),
        )
        self.records.append(record)
        return record

    def run(self, duration: float) -> List[AdaptationRecord]:
        """Run the loop for *duration* seconds and return the new records."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        produced: List[AdaptationRecord] = []
        remaining = duration
        # Ignore sub-nanostep residue left by floating-point accumulation so
        # a run of N·step_interval seconds produces exactly N records.
        while remaining > self.step_interval * 1e-9:
            step = min(self.step_interval, remaining)
            produced.append(self.step(step))
            remaining -= step
        return produced

    # ------------------------------------------------------------------
    # Summary metrics
    # ------------------------------------------------------------------

    def average_rail_voltage(self) -> float:
        """Mean regulated rail voltage over the run."""
        if not self.records:
            return 0.0
        return sum(r.rail_voltage for r in self.records) / len(self.records)

    def duty_profile(self) -> dict:
        """Fraction of control steps spent in each active design style."""
        if not self.records:
            return {}
        counts: dict = {}
        for record in self.records:
            counts[record.active_design] = counts.get(record.active_design, 0) + 1
        total = len(self.records)
        return {name: count / total for name, count in counts.items()}

    def worst_sensing_error(self) -> float:
        """Largest store-voltage sensing error seen, in volts."""
        if not self.records:
            return 0.0
        return max(r.sensing_error for r in self.records)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _active_design_name(self, vdd: float) -> str:
        active = self.design
        if hasattr(self.design, "active_design"):
            active = self.design.active_design(vdd)
        return getattr(active, "name", active.__class__.__name__)

    def _execute_load(self, rail_voltage: float, duration: float,
                      time: float) -> int:
        """Admit as many operations as the rail and the design allow."""
        if rail_voltage <= 0 or not self.design.is_functional(rail_voltage):
            return 0
        throughput = self.design.throughput(rail_voltage)
        wanted = int(throughput * duration)
        wanted = min(wanted, self.policy.max_operations_per_step)
        if wanted <= 0:
            return 0
        energy_per_op = self.design.energy_per_operation(rail_voltage)
        if energy_per_op <= 0:
            self._operations_done += wanted
            return wanted
        # Admit the load in a handful of chunks, re-checking the store between
        # chunks: the converter's efficiency losses mean the store drains
        # faster than the output-side energy alone would suggest, and we must
        # stop before driving it into brown-out.
        admitted = 0
        remaining = wanted
        minimum_input = getattr(self.chain.output_rail,
                                "minimum_input_voltage", 0.0)
        chunks = 8
        chunk_size = max(1, wanted // chunks)
        while remaining > 0:
            store_voltage = self.chain.store.voltage(time)
            if store_voltage <= minimum_input:
                break
            available = self.chain.store.stored_energy(time)
            affordable = int(0.5 * available / energy_per_op)
            batch = min(remaining, chunk_size, max(affordable, 0))
            if batch <= 0:
                break
            total_energy = batch * energy_per_op
            try:
                self.chain.output_rail.draw_charge(
                    total_energy / max(rail_voltage, 1e-9), time)
            except PowerError:  # supply collapsed mid-step: stop admitting
                break
            self._energy_consumed += total_energy
            admitted += batch
            remaining -= batch
        self._operations_done += admitted
        return admitted


# ---------------------------------------------------------------------------
# Per-point quantities for declared experiment plans


def run_fig3_loop(technology, adaptive: bool,
                  run_seconds: float = 2.0,
                  step_interval: float = 0.02,
                  harvester_seed: int = 21,
                  peak_power: float = 80e-6,
                  wander: float = 0.15,
                  storage_capacitance: float = 47e-6,
                  initial_store_voltage: float = 1.3,
                  max_operations_per_step: int = 50_000,
                  ) -> PowerAdaptiveController:
    """The paper's Fig. 3 reference scenario, already run.

    One closed loop over *run_seconds* of seeded, unstable vibration
    harvesting driving a :class:`~repro.core.design_styles.HybridDesign`:
    ``adaptive=True`` uses the store-governed policy (drop to the
    power-proportional floor when depleted, raise towards nominal when
    full); ``adaptive=False`` is the non-adaptive baseline whose policy
    always asks for the nominal rail.  The defaults are the constants the
    Fig. 3 benchmark and its golden values pin, so both necessarily
    describe the same scenario.  Deterministic for a fixed argument set —
    the only randomness is the harvester's seeded wander.
    """
    from repro.core.design_styles import HybridDesign
    from repro.power.harvester import VibrationHarvester
    from repro.power.power_chain import PowerChain

    if adaptive:
        policy = AdaptationPolicy(
            store_low=0.8, store_high=2.0, vdd_floor=0.25, vdd_nominal=1.0,
            max_operations_per_step=max_operations_per_step)
    else:
        # The "non-adaptive" baseline always asks for the nominal rail.
        policy = AdaptationPolicy(
            store_low=0.0001, store_high=0.0002, vdd_floor=0.999,
            vdd_nominal=1.0,
            max_operations_per_step=max_operations_per_step)
    chain = PowerChain(
        harvester=VibrationHarvester(peak_power=peak_power, wander=wander,
                                     seed=harvester_seed),
        storage_capacitance=storage_capacitance, output_voltage=1.0,
        initial_store_voltage=initial_store_voltage)
    controller = PowerAdaptiveController(
        chain=chain, design=HybridDesign(technology), policy=policy,
        step_interval=step_interval)
    controller.run(run_seconds)
    return controller


def loop_metrics(controller: PowerAdaptiveController) -> Dict[str, float]:
    """Scalar summary of one executed closed loop, keyed by :data:`LOOP_METRICS`.

    This is the per-point evaluation of a Fig. 3 style experiment: run a
    :class:`PowerAdaptiveController` (one plan point per controller
    configuration — adaptive versus fixed-rail, policy variants, ...) and
    extract the figures the paper compares — useful operations completed,
    the energy ledger, the average rail voltage and the worst-case energy
    reserve.  Mirrors :func:`repro.core.qos.qos_point` /
    :func:`repro.core.proportionality.activity_for_budget` for the scenario
    benchmarks.
    """
    trace = controller.trace()
    if not trace:
        raise ConfigurationError(
            "loop_metrics() needs a controller that has already run")
    return {
        "operations": float(controller.operations_done),
        "energy_harvested": controller.chain.report().energy_harvested,
        "energy_consumed": controller.energy_consumed,
        "average_rail_voltage": controller.average_rail_voltage(),
        "min_stored_energy": min(r.stored_energy for r in trace),
    }
