"""Energy-modulated computing — the paper's primary contribution.

Everything below the :mod:`repro.core` package is a *mechanism* (device
models, event kernel, supplies, self-timed circuits, SRAM, sensors); this
package is the *policy and analysis* layer the paper's vision statement
describes: systems "in which a certain quality of service is delivered in
return for a certain amount of energy".

Modules
-------
:mod:`repro.core.qos`
    Quality-of-service metrics and QoS-versus-Vdd curves (Fig. 2 axes).
:mod:`repro.core.proportionality`
    Energy-proportionality metrics (Fig. 1).
:mod:`repro.core.design_styles`
    Design 1 (speed-independent dual-rail), Design 2 (bundled data) and the
    hybrid design the paper recommends, as comparable "design style" objects.
:mod:`repro.core.gating`
    Power gating at nominal voltage — the paper's "strategy one" for spending
    scavenged energy, compared against voltage scaling on self-timed logic.
:mod:`repro.core.power_adaptive`
    The holistic two-way adaptation loop of Fig. 3: sense the supply, set the
    operating point, schedule the load.
:mod:`repro.core.petri` and :mod:`repro.core.energy_tokens`
    Petri nets with energy tokens (reference [15]) — the modelling substrate
    for energy-modulated task scheduling.
:mod:`repro.core.scheduler`
    Energy-token task scheduling under a harvester budget.
:mod:`repro.core.arbitration`
    Soft arbitration / concurrency management for power-elastic systems
    (reference [11]).
:mod:`repro.core.stochastic`
    Stochastic analysis of power, latency and the degree of concurrency
    (reference [12]).
:mod:`repro.core.game`
    Game-theoretic power management (reference [16]).
:mod:`repro.core.system`
    The composed energy-harvester-powered system: power chain + sensors +
    scheduler + computational load.
"""

from repro.core.qos import QoSMetric, QoSCurve, qos_point, qos_vs_vdd
from repro.core.proportionality import (
    ProportionalityCurve,
    activity_for_budget,
    proportionality_index,
    dynamic_range,
)
from repro.core.design_styles import (
    DesignStyle,
    SpeedIndependentDesign,
    BundledDataDesign,
    HybridDesign,
)
from repro.core.gating import (
    GatingParameters,
    PowerGatedDesign,
    voltage_scaled_activity_per_quantum,
)
from repro.core.power_adaptive import PowerAdaptiveController, AdaptationRecord
from repro.core.petri import PetriNet, Place, Transition
from repro.core.energy_tokens import EnergyTokenNet, EnergyPlace, EnergyTransition
from repro.core.scheduler import EnergyTokenScheduler, Task, ScheduleResult
from repro.core.arbitration import SoftArbiter, ConcurrencyManager
from repro.core.stochastic import ConcurrencyAnalysis, PowerLatencyModel
from repro.core.game import PowerManagementGame, Strategy
from repro.core.system import EnergyModulatedSystem, SystemReport

__all__ = [
    "QoSMetric",
    "QoSCurve",
    "qos_point",
    "qos_vs_vdd",
    "ProportionalityCurve",
    "activity_for_budget",
    "proportionality_index",
    "dynamic_range",
    "DesignStyle",
    "SpeedIndependentDesign",
    "BundledDataDesign",
    "HybridDesign",
    "GatingParameters",
    "PowerGatedDesign",
    "voltage_scaled_activity_per_quantum",
    "PowerAdaptiveController",
    "AdaptationRecord",
    "PetriNet",
    "Place",
    "Transition",
    "EnergyTokenNet",
    "EnergyPlace",
    "EnergyTransition",
    "EnergyTokenScheduler",
    "Task",
    "ScheduleResult",
    "SoftArbiter",
    "ConcurrencyManager",
    "ConcurrencyAnalysis",
    "PowerLatencyModel",
    "PowerManagementGame",
    "Strategy",
    "EnergyModulatedSystem",
    "SystemReport",
]
