"""Energy-proportionality metrics (paper Fig. 1, after Barroso & Hölzle [2]).

Fig. 1 sketches "the idea of energy-proportional computing": useful activity
should be generated even at small amounts of energy, rather than only after a
large fixed overhead has been paid.  This module quantifies that idea for any
activity-versus-energy relationship:

* :class:`ProportionalityCurve` — a sampled (energy in, activity out) curve;
* :func:`proportionality_index` — 1.0 for a perfectly proportional system,
  approaching 0 for a system dominated by fixed overhead;
* :func:`dynamic_range` — the ratio between the largest and smallest energy
  quanta that still produce useful activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigurationError


def activity_for_budget(design, vdd: float, energy_budget: float,
                        burst_window: float) -> float:
    """Operations one burst of *energy_budget* joules buys from *design*.

    The Fig. 1 activity model: the design first pays its standby (leakage)
    energy for the whole *burst_window*; whatever is left buys operations at
    ``energy_per_operation(vdd)``.  A non-functional voltage means no
    activity at all — the "cannot deliver" region of Fig. 2.
    """
    if not design.is_functional(vdd):
        return 0.0
    overhead = design.leakage_power(vdd) * burst_window
    usable = energy_budget - overhead
    if usable <= 0:
        return 0.0
    return usable / design.energy_per_operation(vdd)


@dataclass
class ProportionalityCurve:
    """A sampled activity-versus-energy curve.

    ``points`` is a list of ``(energy_joules, activity)`` pairs where
    *activity* counts useful outcomes (operations, transitions, samples).
    """

    name: str
    points: List[Tuple[float, float]]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ConfigurationError("a proportionality curve needs >= 2 points")
        energies = [e for e, _ in self.points]
        if any(e2 <= e1 for e1, e2 in zip(energies, energies[1:])):
            raise ConfigurationError("energies must strictly increase")
        if any(a < 0 for _, a in self.points):
            raise ConfigurationError("activity must be non-negative")

    # ------------------------------------------------------------------

    def activity_at(self, energy: float) -> float:
        """Interpolated activity produced for *energy* joules of input."""
        points = self.points
        if energy <= points[0][0]:
            return points[0][1]
        if energy >= points[-1][0]:
            return points[-1][1]
        for (e0, a0), (e1, a1) in zip(points, points[1:]):
            if energy < e1:
                fraction = (energy - e0) / (e1 - e0)
                return a0 + fraction * (a1 - a0)
        return points[-1][1]

    def onset_energy(self) -> float:
        """Smallest sampled energy that produced any activity."""
        for energy, activity in self.points:
            if activity > 0:
                return energy
        return float("inf")

    def marginal_efficiency(self) -> float:
        """Activity per joule over the top half of the energy range."""
        mid = 0.5 * (self.points[0][0] + self.points[-1][0])
        top = self.points[-1]
        base = self.activity_at(mid)
        denom = top[0] - mid
        if denom <= 0:
            return 0.0
        return (top[1] - base) / denom


def proportionality_index(curve: ProportionalityCurve) -> float:
    """Linearity of activity versus energy, in [0, 1].

    Defined as the ratio of the area under the measured curve to the area
    under the ideal proportional line through the end point (both measured
    above the zero-activity axis).  A system with a large fixed overhead
    produces little activity at low energy, losing area, and scores low; a
    perfectly proportional system scores 1.
    """
    points = curve.points
    e_max, a_max = points[-1]
    if a_max <= 0 or e_max <= 0:
        return 0.0
    measured_area = 0.0
    ideal_area = 0.5 * e_max * a_max
    for (e0, a0), (e1, a1) in zip(points, points[1:]):
        measured_area += 0.5 * (a0 + a1) * (e1 - e0)
    # Contribution before the first sample assumed zero activity.
    if ideal_area <= 0:
        return 0.0
    return max(0.0, min(1.0, measured_area / ideal_area))


def dynamic_range(curve: ProportionalityCurve) -> float:
    """Ratio of the largest to the smallest energy producing useful activity.

    The paper's energy-modulated vision requires "some useful activity even
    at small amounts of energy" — a large dynamic range.  Returns ``inf``
    for a curve active at its smallest sample.
    """
    onset = curve.onset_energy()
    e_max = curve.points[-1][0]
    if onset <= 0:
        return float("inf")
    if onset == float("inf"):
        return 0.0
    return e_max / onset


def build_proportionality_curve(
        name: str,
        activity_fn: Callable[[float], float],
        energies: Sequence[float]) -> ProportionalityCurve:
    """Characterise *activity_fn* over *energies* into a curve object."""
    if len(energies) < 2:
        raise ConfigurationError("need at least two energies")
    points = [(float(e), float(activity_fn(float(e)))) for e in energies]
    return ProportionalityCurve(name=name, points=points)
