"""Design styles: Design 1, Design 2 and the hybrid (paper Fig. 2).

The paper's central design-space observation:

* **Design 1** — speed-independent, dual-rail with completion detection:
  "more conservative to delay variations due to low or unstable Vdd, but
  consumes more power due to its additional logic components";
* **Design 2** — bundled-data: "less timing robust but has much less
  overhead for a nominal Vdd";
* the recommended **hybrid** "combines the strengths of both designs, say,
  using Design 1 in the depleted power (idle) mode and Design 2 in a full
  power mode" — which is why "truly energy-modulated design has to be
  power-adaptive".

Each style exposes the same small interface (``throughput``,
``energy_per_operation``, ``is_functional``, ``leakage_power``), so the QoS
sweep of Fig. 2 and the system-level scheduler can treat them uniformly.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.selftimed.bundled import BundledDataStage
from repro.selftimed.completion import CompletionTreeModel


class DesignStyle:
    """Common interface for comparable design styles."""

    name = "abstract"

    def is_functional(self, vdd: float) -> bool:
        """Whether the design operates correctly at supply *vdd*."""
        raise NotImplementedError

    def cycle_time(self, vdd: float) -> float:
        """Seconds per operation at supply *vdd*."""
        raise NotImplementedError

    def energy_per_operation(self, vdd: float) -> float:
        """Joules per operation at supply *vdd*."""
        raise NotImplementedError

    def leakage_power(self, vdd: float) -> float:
        """Idle static power in watts at supply *vdd*."""
        raise NotImplementedError

    # Derived quantities -------------------------------------------------

    def throughput(self, vdd: float) -> float:
        """Operations per second at supply *vdd* (0 when non-functional)."""
        if not self.is_functional(vdd):
            return 0.0
        return 1.0 / self.cycle_time(vdd)

    def power(self, vdd: float, utilisation: float = 1.0) -> float:
        """Total power at supply *vdd* and the given utilisation (0–1)."""
        if not (0.0 <= utilisation <= 1.0):
            raise ConfigurationError("utilisation must lie in [0, 1]")
        dynamic = 0.0
        if self.is_functional(vdd) and utilisation > 0:
            dynamic = (utilisation * self.energy_per_operation(vdd)
                       / self.cycle_time(vdd))
        return dynamic + self.leakage_power(vdd)

    def operations_per_joule(self, vdd: float) -> float:
        """Useful work per joule at supply *vdd*."""
        if not self.is_functional(vdd):
            return 0.0
        energy = self.energy_per_operation(vdd)
        return 1.0 / energy if energy > 0 else 0.0

    def minimum_operating_voltage(self, resolution: float = 0.005,
                                  vdd_max: Optional[float] = None) -> float:
        """Lowest supply at which the style still delivers QoS."""
        raise NotImplementedError


class SpeedIndependentDesign(DesignStyle):
    """Design 1: dual-rail, completion-detected datapath.

    Parameters
    ----------
    technology:
        Process parameters.
    logic_depth:
        Datapath depth in gate delays.
    datapath_width:
        Number of logical data bits (dual-rail doubles the wires).
    """

    name = "design1_speed_independent"

    def __init__(self, technology: Technology, logic_depth: int = 10,
                 datapath_width: int = 16) -> None:
        if logic_depth < 1 or datapath_width < 1:
            raise ConfigurationError("logic_depth and datapath_width must be >= 1")
        self.technology = technology
        self.logic_depth = logic_depth
        self.datapath_width = datapath_width
        self._gate = GateModel(technology=technology, gate_type=GateType.NAND2)
        self._c_gate = GateModel(technology=technology, gate_type=GateType.C_ELEMENT)
        self.completion = CompletionTreeModel(technology=technology,
                                              bits=datapath_width)

    # ------------------------------------------------------------------

    def is_functional(self, vdd: float) -> bool:
        """Functional anywhere the gates still switch — the point of Design 1."""
        return vdd >= self.technology.vdd_min

    def cycle_time(self, vdd: float) -> float:
        """4-phase dual-rail cycle: data wave + completion, then spacer + reset."""
        datapath = self.logic_depth * self._gate.delay(vdd)
        detection = self.completion.delay(vdd)
        handshake = 2.0 * self._c_gate.delay(vdd)
        return 2.0 * (datapath + detection + handshake)

    def energy_per_operation(self, vdd: float) -> float:
        """Dual-rail datapath (every bit fires one rail per phase) + CD tree."""
        # Dual-rail: exactly one rail per bit switches per phase, two phases
        # per operation, across the logic depth.
        datapath = (2.0 * self.datapath_width * self.logic_depth
                    * self._gate.transition_energy(vdd) * 0.5)
        detection = self.completion.energy(vdd)
        handshake = 4.0 * self._c_gate.transition_energy(vdd)
        return datapath + detection + handshake

    def leakage_power(self, vdd: float) -> float:
        """Roughly twice the gate count of the bundled equivalent leaks."""
        gates = 2.0 * self.datapath_width * self.logic_depth * 0.5
        return (gates * self._gate.leakage_power(vdd)
                + self.completion.leakage_power(vdd))

    def minimum_operating_voltage(self, resolution: float = 0.005,
                                  vdd_max: Optional[float] = None) -> float:
        """Equal to the technology's functional minimum."""
        return self.technology.vdd_min


class BundledDataDesign(DesignStyle):
    """Design 2: single-rail datapath timed by a matched delay line."""

    name = "design2_bundled_data"

    def __init__(self, technology: Technology, logic_depth: int = 10,
                 datapath_width: int = 16, margin: float = 1.5,
                 calibration_vdd: Optional[float] = None) -> None:
        self.technology = technology
        self.stage = BundledDataStage(
            technology=technology,
            logic_depth=logic_depth,
            datapath_width=datapath_width,
            margin=margin,
            calibration_vdd=calibration_vdd,
        )

    # ------------------------------------------------------------------

    def is_functional(self, vdd: float) -> bool:
        """Functional only while the bundling margin holds."""
        return self.stage.is_functional(vdd)

    def cycle_time(self, vdd: float) -> float:
        """Bundled 4-phase cycle (no completion detection to wait for)."""
        return self.stage.cycle_time(vdd, check=False)

    def energy_per_operation(self, vdd: float) -> float:
        """Single-rail switching plus the delay-line control overhead."""
        return self.stage.energy_per_operation(vdd)

    def leakage_power(self, vdd: float) -> float:
        """Static power of the single-rail datapath and delay line."""
        return self.stage.leakage_power(vdd)

    def minimum_operating_voltage(self, resolution: float = 0.005,
                                  vdd_max: Optional[float] = None) -> float:
        """The voltage where the matched-delay assumption breaks."""
        return self.stage.minimum_operating_voltage(resolution=resolution)


class HybridDesign(DesignStyle):
    """The paper's recommended hybrid: Design 1 below a threshold, Design 2 above.

    Parameters
    ----------
    switch_voltage:
        Supply level at which the system switches styles.  ``None`` picks the
        lowest voltage at which Design 2 is functional (plus a small guard
        band), i.e. the hybrid uses the efficient style wherever it is safe
        and falls back to the robust style below.
    guard_band:
        Extra margin (volts) added above Design 2's minimum before trusting it.
    """

    name = "hybrid_power_adaptive"

    def __init__(self, technology: Technology, logic_depth: int = 10,
                 datapath_width: int = 16,
                 switch_voltage: Optional[float] = None,
                 guard_band: float = 0.05) -> None:
        if guard_band < 0:
            raise ConfigurationError("guard_band must be non-negative")
        self.technology = technology
        self.design1 = SpeedIndependentDesign(technology, logic_depth,
                                              datapath_width)
        self.design2 = BundledDataDesign(technology, logic_depth,
                                         datapath_width)
        if switch_voltage is None:
            switch_voltage = (self.design2.minimum_operating_voltage()
                              + guard_band)
        self.switch_voltage = switch_voltage

    # ------------------------------------------------------------------

    def active_design(self, vdd: float) -> DesignStyle:
        """Which constituent style handles operation at supply *vdd*."""
        if vdd >= self.switch_voltage and self.design2.is_functional(vdd):
            return self.design2
        return self.design1

    def is_functional(self, vdd: float) -> bool:
        """Functional wherever either constituent style is."""
        return self.active_design(vdd).is_functional(vdd)

    def cycle_time(self, vdd: float) -> float:
        """Cycle time of whichever style is active at *vdd*."""
        return self.active_design(vdd).cycle_time(vdd)

    def energy_per_operation(self, vdd: float) -> float:
        """Energy of whichever style is active, plus the mode-switch logic tax."""
        base = self.active_design(vdd).energy_per_operation(vdd)
        # The hybrid carries both datapaths; the inactive one is power-gated
        # but its mode-switching wrapper costs a small constant overhead.
        overhead = 0.02 * self.design1.energy_per_operation(vdd)
        return base + overhead

    def leakage_power(self, vdd: float) -> float:
        """Active style leaks fully; the gated style leaks a residual 5 %."""
        active = self.active_design(vdd)
        inactive = self.design1 if active is self.design2 else self.design2
        return active.leakage_power(vdd) + 0.05 * inactive.leakage_power(vdd)

    def minimum_operating_voltage(self, resolution: float = 0.005,
                                  vdd_max: Optional[float] = None) -> float:
        """Inherits Design 1's floor — the whole point of the hybrid."""
        return self.design1.minimum_operating_voltage(resolution)


#: Names of the scalars :func:`hybrid_tradeoff_metrics` reports (the ABL3
#: plan's quantity set).
HYBRID_TRADEOFF_METRICS = ("energy_per_op_high", "energy_per_op_low",
                           "min_operating_voltage")


def hybrid_tradeoff_metrics(technology: Technology, switch_voltage: float,
                            vdd_high: float = 1.0,
                            vdd_low: float = 0.3) -> dict:
    """The hybrid's figures of merit at one switch-voltage choice (ABL3).

    Per-point evaluation of the switch-voltage ablation plan: builds a
    :class:`HybridDesign` that hands over between the two styles at
    *switch_voltage* and reports energy per operation at a high and a low
    supply plus the operating floor (which must not depend on the switch
    point — Design 1 always owns the floor).
    """
    hybrid = HybridDesign(technology, switch_voltage=switch_voltage)
    return {
        "energy_per_op_high": hybrid.energy_per_operation(vdd_high),
        "energy_per_op_low": hybrid.energy_per_operation(vdd_low),
        "min_operating_voltage": hybrid.minimum_operating_voltage(),
    }
