"""Storage and sampling capacitors.

A capacitor is the one supply node whose behaviour *is* the experiment: the
charge-to-digital converter of Figs. 9–11 works precisely because every gate
transition removes a well-defined quantum of charge from the sampling
capacitor, lowering its voltage, slowing the logic, and eventually stopping
it — at which point the accumulated count encodes the initial voltage.

:class:`Capacitor` implements the supply-node protocol with charge
conservation (``V = Q / C``) plus an optional self-discharge (leakage)
resistance.  :class:`SamplingCapacitor` adds the sample-and-hold front end of
Fig. 8: it can be connected to an upstream supply through switch S1 to sample
its voltage, then disconnected and discharged into the load through S2.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError, PowerError, SupplyCollapseError
from repro.power.supply import SupplyNode


class Capacitor:
    """A charge-conserving capacitor acting as a supply node.

    Parameters
    ----------
    capacitance:
        Capacitance in farads.
    initial_voltage:
        Voltage at time zero, in volts.
    leakage_resistance:
        Optional parallel self-discharge resistance in ohms; ``None`` means
        an ideal capacitor.
    min_operating_voltage:
        Voltage below which :meth:`draw_charge` raises
        :class:`~repro.errors.SupplyCollapseError` — loads use this to detect
        that the supply has collapsed under them.
    """

    def __init__(self, capacitance: float, initial_voltage: float = 0.0,
                 leakage_resistance: Optional[float] = None,
                 min_operating_voltage: float = 0.0,
                 name: str = "cap") -> None:
        if capacitance <= 0:
            raise ConfigurationError("capacitance must be positive")
        if initial_voltage < 0:
            raise ConfigurationError("initial_voltage must be non-negative")
        if leakage_resistance is not None and leakage_resistance <= 0:
            raise ConfigurationError("leakage_resistance must be positive")
        if min_operating_voltage < 0:
            raise ConfigurationError("min_operating_voltage must be non-negative")
        self.name = name
        self.capacitance = capacitance
        self.leakage_resistance = leakage_resistance
        self.min_operating_voltage = min_operating_voltage
        self._voltage = initial_voltage
        self._last_update = 0.0
        self._charge_delivered = 0.0
        self._energy_delivered = 0.0

    # ------------------------------------------------------------------
    # Internal time evolution
    # ------------------------------------------------------------------

    def _advance(self, time: float) -> None:
        """Apply self-discharge between the last update and *time*.

        Tiny backwards steps caused by floating-point accumulation in long
        environmental loops are tolerated and clamped; genuinely stale
        timestamps raise :class:`~repro.errors.PowerError`.
        """
        if time < self._last_update:
            tolerance = 1e-12 + 1e-9 * abs(self._last_update)
            if self._last_update - time > tolerance:
                raise PowerError(
                    f"capacitor {self.name!r} asked to move backwards in time "
                    f"({time} < {self._last_update})"
                )
            time = self._last_update
        if self.leakage_resistance is not None and time > self._last_update:
            tau = self.leakage_resistance * self.capacitance
            self._voltage *= math.exp(-(time - self._last_update) / tau)
        self._last_update = time

    # ------------------------------------------------------------------
    # SupplyNode protocol
    # ------------------------------------------------------------------

    def voltage(self, time: float) -> float:
        """Capacitor voltage at *time*, accounting for self-discharge."""
        self._advance(time)
        return self._voltage

    def draw_charge(self, charge: float, time: float) -> None:
        """Remove *charge* coulombs at *time*; the voltage drops by ``Q/C``.

        Raises :class:`~repro.errors.SupplyCollapseError` if the voltage is
        already at or below the configured minimum operating voltage.
        """
        if charge < 0:
            raise PowerError("negative charge draw")
        self._advance(time)
        if self._voltage <= self.min_operating_voltage:
            raise SupplyCollapseError(
                f"capacitor {self.name!r} at {self._voltage:.4f} V is below its "
                f"minimum operating voltage {self.min_operating_voltage:.4f} V"
            )
        self._energy_delivered += charge * self._voltage
        self._charge_delivered += charge
        self._voltage = max(0.0, self._voltage - charge / self.capacitance)

    @property
    def energy_delivered(self) -> float:
        """Total energy handed to loads so far, in joules."""
        return self._energy_delivered

    @property
    def charge_delivered(self) -> float:
        """Total charge handed to loads so far, in coulombs."""
        return self._charge_delivered

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------

    def stored_charge(self, time: float) -> float:
        """Charge currently stored, in coulombs."""
        return self.voltage(time) * self.capacitance

    def stored_energy(self, time: float) -> float:
        """Energy currently stored, ``½·C·V²`` in joules."""
        v = self.voltage(time)
        return 0.5 * self.capacitance * v * v

    def add_charge(self, charge: float, time: float) -> None:
        """Push *charge* coulombs into the capacitor (harvester inflow)."""
        if charge < 0:
            raise PowerError("negative charge added")
        self._advance(time)
        self._voltage += charge / self.capacitance

    def add_energy(self, energy: float, time: float) -> float:
        """Push *energy* joules in; returns the resulting voltage.

        Energy-based charging solves ``½·C·V_new² = ½·C·V_old² + E``.
        """
        if energy < 0:
            raise PowerError("negative energy added")
        self._advance(time)
        new_sq = self._voltage * self._voltage + 2.0 * energy / self.capacitance
        self._voltage = math.sqrt(new_sq)
        return self._voltage

    def set_voltage(self, voltage: float, time: float) -> None:
        """Force the capacitor voltage (ideal sampling switch closing)."""
        if voltage < 0:
            raise ConfigurationError("voltage must be non-negative")
        self._advance(time)
        self._voltage = voltage


class SamplingCapacitor(Capacitor):
    """The sample-and-hold capacitor of the Fig. 8 voltage-sensor front end.

    Lifecycle per conversion:

    1. :meth:`sample` — close switch S1 for *sampling_time* seconds; the
       capacitor charges toward the source voltage through the switch
       resistance (one RC time constant model).
    2. :meth:`hold` — open S1.
    3. the load (the self-timed counter) then discharges it through S2 by
       calling :meth:`draw_charge` for every transition, until the voltage
       collapses.
    """

    def __init__(self, capacitance: float, switch_resistance: float = 1e3,
                 min_operating_voltage: float = 0.0,
                 name: str = "csample") -> None:
        super().__init__(capacitance=capacitance, initial_voltage=0.0,
                         min_operating_voltage=min_operating_voltage, name=name)
        if switch_resistance <= 0:
            raise ConfigurationError("switch_resistance must be positive")
        self.switch_resistance = switch_resistance
        self._sampling = False

    @property
    def sampling(self) -> bool:
        """True while switch S1 is closed."""
        return self._sampling

    def sample(self, source: SupplyNode, sampling_time: float,
               time: float) -> float:
        """Charge from *source* for *sampling_time* seconds starting at *time*.

        Returns the voltage reached.  With a constant sampling time the
        acquired charge is proportional to the source voltage, which is the
        premise of the charge-to-digital conversion (Fig. 11).
        """
        if sampling_time <= 0:
            raise ConfigurationError("sampling_time must be positive")
        self._advance(time)
        self._sampling = True
        source_v = source.voltage(time)
        tau = self.switch_resistance * self.capacitance
        settled = source_v + (self._voltage - source_v) * math.exp(-sampling_time / tau)
        delta_q = (settled - self._voltage) * self.capacitance
        if delta_q > 0:
            source.draw_charge(delta_q, time)
        self._voltage = settled
        self._sampling = False
        return self._voltage

    def hold(self) -> None:
        """Open the sampling switch (explicit for symmetry; sample() auto-holds)."""
        self._sampling = False


# ---------------------------------------------------------------------------
# Invariant adapter (the campaign fuzzer's charge-conservation probe)


def charge_conservation_violations(capacitance, initial_voltage, draws,
                                   capacitor_factory=None):
    """Charge-conservation violations of one capacitor draw sequence.

    The power layer's invariant adapter for
    :mod:`repro.analysis.campaign.invariants`: build a capacitor of
    *capacitance* farads starting at *initial_voltage* volts (through
    *capacitor_factory*, which tests may substitute with a deliberately
    broken model), apply the non-negative charge *draws* in order, and
    return a list of human-readable violation messages — empty when the
    capacitor conserved charge.  Checked invariants:

    * the voltage never goes negative and never rises on a draw;
    * the stored + delivered charge ledger never exceeds the initial
      charge (checked only while the capacitor has not been driven to the
      0 V clamp, where the ledger legitimately over-counts).

    Deterministic: the only inputs are the arguments, so any reported
    violation replays bit-for-bit from the same draw list.
    """
    factory = capacitor_factory if capacitor_factory is not None else Capacitor
    cap = factory(capacitance=capacitance, initial_voltage=initial_voltage)
    violations = []
    initial_charge = capacitance * initial_voltage
    tolerance = 1e-12 * max(1.0, initial_charge) + 1e-18
    previous = cap.voltage(0.0)
    if previous < 0.0:
        violations.append(
            f"initial voltage is negative: {previous!r} V")
    clamped = False
    for index, charge in enumerate(draws):
        time = float(index + 1)
        if previous <= 0.0:
            break  # a fully drained ideal capacitor may refuse the draw
        cap.draw_charge(float(charge), time)
        current = cap.voltage(time)
        if current < 0.0:
            violations.append(
                f"draw {index}: voltage went negative ({current!r} V)")
        if current > previous + 1e-15:
            violations.append(
                f"draw {index}: voltage rose from {previous!r} to "
                f"{current!r} V on a {charge!r} C draw")
        if current == 0.0 and previous - charge / capacitance < 0.0:
            clamped = True  # over-draw hit the 0 V clamp; ledger over-counts
        previous = current
    if not clamped:
        final_time = float(len(draws) + 1)
        ledger = cap.stored_charge(final_time) + cap.charge_delivered
        if ledger > initial_charge + tolerance:
            violations.append(
                f"charge ledger created charge: stored + delivered = "
                f"{ledger!r} C > initial {initial_charge!r} C")
    return violations
