"""Finite-capacity battery model.

The paper contrasts the battery-powered design style ("finite energy, large
available power, stable and known supply characteristics") with the
energy-harvester style.  :class:`Battery` captures exactly those properties:
a stiff voltage source with a state of charge, a simple internal-resistance
droop, and a cutoff below which it stops delivering.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, PowerError, SupplyCollapseError


class Battery:
    """A finite-energy, nominally-stiff voltage source.

    Parameters
    ----------
    nominal_voltage:
        Open-circuit voltage when full, in volts.
    capacity_joules:
        Total extractable energy in joules.
    internal_resistance:
        Series resistance in ohms used to model voltage droop under load.
    cutoff_fraction:
        State-of-charge fraction below which the battery is considered empty
        and refuses further draws.
    """

    def __init__(self, nominal_voltage: float, capacity_joules: float,
                 internal_resistance: float = 0.0,
                 cutoff_fraction: float = 0.05,
                 name: str = "battery") -> None:
        if nominal_voltage <= 0:
            raise ConfigurationError("nominal_voltage must be positive")
        if capacity_joules <= 0:
            raise ConfigurationError("capacity_joules must be positive")
        if internal_resistance < 0:
            raise ConfigurationError("internal_resistance must be non-negative")
        if not (0.0 <= cutoff_fraction < 1.0):
            raise ConfigurationError("cutoff_fraction must lie in [0, 1)")
        self.name = name
        self.nominal_voltage = nominal_voltage
        self.capacity_joules = capacity_joules
        self.internal_resistance = internal_resistance
        self.cutoff_fraction = cutoff_fraction
        self._remaining = capacity_joules
        self._energy_delivered = 0.0
        self._charge_delivered = 0.0
        self._recent_current = 0.0

    # ------------------------------------------------------------------

    @property
    def state_of_charge(self) -> float:
        """Remaining energy as a fraction of capacity (0–1)."""
        return self._remaining / self.capacity_joules

    @property
    def remaining_energy(self) -> float:
        """Remaining extractable energy in joules."""
        return self._remaining

    @property
    def empty(self) -> bool:
        """True once the state of charge reached the cutoff."""
        return self.state_of_charge <= self.cutoff_fraction

    @property
    def energy_delivered(self) -> float:
        """Total energy delivered to loads, in joules."""
        return self._energy_delivered

    @property
    def charge_delivered(self) -> float:
        """Total charge delivered to loads, in coulombs."""
        return self._charge_delivered

    # ------------------------------------------------------------------
    # SupplyNode protocol
    # ------------------------------------------------------------------

    def voltage(self, time: float) -> float:
        """Terminal voltage: nominal minus IR droop, with a mild SoC slope.

        The open-circuit voltage falls linearly by 10 % from full to the
        cutoff — enough to make voltage sensing meaningful without modelling
        full discharge chemistry.
        """
        soc = self.state_of_charge
        open_circuit = self.nominal_voltage * (0.9 + 0.1 * soc)
        droop = self.internal_resistance * self._recent_current
        return max(0.0, open_circuit - droop)

    def draw_charge(self, charge: float, time: float) -> None:
        """Remove *charge* coulombs; raises when the battery is empty."""
        if charge < 0:
            raise PowerError("negative charge draw")
        if self.empty:
            raise SupplyCollapseError(f"battery {self.name!r} is empty")
        voltage = self.voltage(time)
        energy = charge * voltage
        if energy > self._remaining:
            self._remaining = 0.0
            raise SupplyCollapseError(
                f"battery {self.name!r} exhausted mid-draw"
            )
        self._remaining -= energy
        self._energy_delivered += energy
        self._charge_delivered += charge

    def set_load_current(self, current: float) -> None:
        """Report the present load current (amperes) for droop modelling."""
        if current < 0:
            raise PowerError("load current must be non-negative")
        self._recent_current = current

    def recharge(self, energy: float) -> None:
        """Put *energy* joules back (e.g. from a harvester trickle charger)."""
        if energy < 0:
            raise PowerError("recharge energy must be non-negative")
        self._remaining = min(self.capacity_joules, self._remaining + energy)
