"""The composed energy-harvesting power chain (Figs. 3 and 8).

``harvester → MPPT → storage capacitor → DC-DC converter → load rail``

:class:`PowerChain` wires the pieces of this package together and exposes the
output rail as a supply node for the circuit packages, plus a
:meth:`advance` method that moves environmental time forward (harvesting into
the store and billing converter quiescent losses).  The
:class:`~repro.core.power_adaptive.PowerAdaptiveController` closes the loop
around it using a voltage sensor from :mod:`repro.sensors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.power.capacitor import Capacitor
from repro.power.dcdc import ConverterEfficiency, DCDCConverter
from repro.power.harvester import HarvesterModel
from repro.power.mppt import MPPTController


@dataclass
class ChainReport:
    """End-to-end energy ledger of a power chain over a run."""

    energy_harvested: float
    energy_stored: float
    energy_delivered_to_load: float
    conversion_loss: float
    tracking_efficiency: float
    store_voltage: float

    @property
    def end_to_end_efficiency(self) -> float:
        """Fraction of harvested energy that reached the load."""
        if self.energy_harvested <= 0:
            return 0.0
        return self.energy_delivered_to_load / self.energy_harvested


class PowerChain:
    """Harvester → MPPT → storage → DC-DC → load-rail composition.

    Parameters
    ----------
    harvester:
        Environmental energy source.
    storage_capacitance:
        Size of the storage capacitor in farads (a supercap in real designs).
    output_voltage:
        Initial regulated output rail voltage in volts.
    initial_store_voltage:
        Voltage the storage capacitor starts at (cold-start studies set 0).
    mppt_interval:
        Perturb-and-observe step interval in seconds.
    converter_efficiency:
        Optional custom :class:`~repro.power.dcdc.ConverterEfficiency`.
    """

    def __init__(self, harvester: HarvesterModel, storage_capacitance: float = 100e-6,
                 output_voltage: float = 1.0, initial_store_voltage: float = 2.0,
                 mppt_interval: float = 0.05,
                 converter_efficiency: Optional[ConverterEfficiency] = None,
                 name: str = "chain") -> None:
        if storage_capacitance <= 0:
            raise ConfigurationError("storage_capacitance must be positive")
        if output_voltage <= 0:
            raise ConfigurationError("output_voltage must be positive")
        self.name = name
        self.harvester = harvester
        self.store = Capacitor(
            capacitance=storage_capacitance,
            initial_voltage=initial_store_voltage,
            name=f"{name}.store",
        )
        self.converter = DCDCConverter(
            input_store=self.store,
            target_voltage=output_voltage,
            efficiency=converter_efficiency,
            name=f"{name}.dcdc",
        )
        self.mppt = MPPTController(
            harvester=harvester,
            store=self.store,
            initial_voltage=harvester.v_mpp_nominal,
            step_interval=mppt_interval,
        )
        self._time = 0.0

    # ------------------------------------------------------------------

    @property
    def time(self) -> float:
        """Environmental time the chain has been advanced to, in seconds."""
        return self._time

    @property
    def output_rail(self) -> DCDCConverter:
        """The supply node circuits should connect to."""
        return self.converter

    def advance(self, duration: float) -> None:
        """Advance environmental time by *duration* seconds.

        The MPPT controller harvests into the store and the converter's
        quiescent power is billed.  Load draws happen asynchronously through
        :attr:`output_rail` whenever circuits switch.
        """
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        end = self._time + duration
        while self._time < end:
            step = min(self.mppt.step_interval, end - self._time)
            if step >= self.mppt.step_interval * 0.999:
                self.mppt.step(self._time)
            else:
                energy = self.harvester.harvest(self._time, step)
                self.store.add_energy(energy, self._time + step)
            self._time += step
            self.converter.idle_tick(step, self._time)

    def set_output_voltage(self, voltage: float) -> None:
        """Reprogram the regulated rail (power-adaptive control actuator)."""
        self.converter.set_target_voltage(voltage)

    # ------------------------------------------------------------------

    def report(self) -> ChainReport:
        """Produce the end-to-end energy ledger for the run so far."""
        return ChainReport(
            energy_harvested=self.harvester.energy_harvested,
            energy_stored=self.store.stored_energy(self._time),
            energy_delivered_to_load=self.converter.energy_delivered,
            conversion_loss=self.converter.conversion_loss(),
            tracking_efficiency=self.mppt.tracking_efficiency(),
            store_voltage=self.store.voltage(self._time),
        )
