"""DC-DC converter model.

In the paper's holistic power chain (Figs. 3 and 8) a DC-DC converter sits
between the storage element and the computational load, and the voltage
sensor's job is to tell the controller what the converter is actually
delivering.  The paper also points out that maintaining a stable rail from a
weak harvester "costs energy (again!)" — so the converter model's essential
feature is a realistic, load-dependent efficiency curve rather than an ideal
transformer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, PowerError, SupplyCollapseError
from repro.power.capacitor import Capacitor


@dataclass(frozen=True)
class ConverterEfficiency:
    """Efficiency curve parameters for a switching converter.

    Efficiency is modelled as
    ``P_out / (P_out + P_fixed + k_sw·P_out + R_loss·P_out²/V_out²)`` —
    a fixed quiescent overhead (dominates at light load, making light-load
    efficiency poor), a proportional switching loss and an I²R conduction
    loss (dominates at heavy load).
    """

    quiescent_power: float = 1e-6
    switching_loss_fraction: float = 0.05
    conduction_resistance: float = 1.0

    def efficiency(self, output_power: float, output_voltage: float) -> float:
        """Conversion efficiency (0–1) at the given output power and voltage."""
        if output_power < 0:
            raise PowerError("output power must be non-negative")
        if output_power == 0:
            return 0.0
        if output_voltage <= 0:
            raise PowerError("output voltage must be positive")
        current = output_power / output_voltage
        losses = (self.quiescent_power
                  + self.switching_loss_fraction * output_power
                  + self.conduction_resistance * current * current)
        return output_power / (output_power + losses)

    def input_power(self, output_power: float, output_voltage: float) -> float:
        """Input power in watts needed to deliver *output_power*."""
        if output_power == 0:
            return self.quiescent_power
        eff = self.efficiency(output_power, output_voltage)
        if eff <= 0:
            return float("inf")
        return output_power / eff


class DCDCConverter:
    """A regulated output rail fed from a storage capacitor.

    The converter holds its output at ``target_voltage`` as long as the input
    store can supply the required energy; every output-side draw is billed to
    the input store at the efficiency-corrected rate.  When the input store
    collapses below ``minimum_input_voltage`` the output collapses with it
    (brown-out), which is how downstream circuits experience harvester
    droughts.
    """

    def __init__(self, input_store: Capacitor, target_voltage: float,
                 efficiency: Optional[ConverterEfficiency] = None,
                 minimum_input_voltage: float = 0.3,
                 name: str = "dcdc") -> None:
        if target_voltage <= 0:
            raise ConfigurationError("target_voltage must be positive")
        if minimum_input_voltage < 0:
            raise ConfigurationError("minimum_input_voltage must be non-negative")
        self.name = name
        self.input_store = input_store
        self.target_voltage = target_voltage
        self.efficiency_model = efficiency or ConverterEfficiency()
        self.minimum_input_voltage = minimum_input_voltage
        self._energy_delivered = 0.0
        self._energy_drawn_from_input = 0.0
        self._charge_delivered = 0.0

    # ------------------------------------------------------------------

    @property
    def energy_delivered(self) -> float:
        """Energy delivered on the output side, in joules."""
        return self._energy_delivered

    @property
    def energy_drawn_from_input(self) -> float:
        """Energy taken from the input store (includes conversion losses)."""
        return self._energy_drawn_from_input

    @property
    def charge_delivered(self) -> float:
        """Charge delivered on the output side, in coulombs."""
        return self._charge_delivered

    def conversion_loss(self) -> float:
        """Total energy lost in conversion so far, in joules."""
        return self._energy_drawn_from_input - self._energy_delivered

    def set_target_voltage(self, voltage: float) -> None:
        """Reprogram the output rail (the actuator of power-adaptive control)."""
        if voltage <= 0:
            raise ConfigurationError("target_voltage must be positive")
        self.target_voltage = voltage

    # ------------------------------------------------------------------
    # SupplyNode protocol (output side)
    # ------------------------------------------------------------------

    def voltage(self, time: float) -> float:
        """Regulated output voltage, or a collapsing rail during brown-out."""
        vin = self.input_store.voltage(time)
        if vin <= self.minimum_input_voltage:
            # Brown-out: output follows the input store scaled to the target,
            # so loads see a gradual collapse rather than a cliff.
            return self.target_voltage * max(0.0, vin / self.minimum_input_voltage)
        return self.target_voltage

    def draw_charge(self, charge: float, time: float) -> None:
        """Deliver *charge* at the output rail, billing the input store."""
        if charge < 0:
            raise PowerError("negative charge draw")
        vout = self.voltage(time)
        if vout <= 0:
            raise SupplyCollapseError(
                f"DC-DC {self.name!r} output has collapsed"
            )
        output_energy = charge * vout
        # Efficiency is evaluated at an equivalent short-burst power level;
        # we use the energy itself over a 1 µs accounting window.
        window = 1e-6
        eff = self.efficiency_model.efficiency(output_energy / window, vout)
        eff = max(eff, 0.05)
        input_energy = output_energy / eff
        vin = self.input_store.voltage(time)
        if vin <= 0:
            raise SupplyCollapseError(
                f"DC-DC {self.name!r} input store is empty"
            )
        self.input_store.draw_charge(input_energy / vin, time)
        self._energy_delivered += output_energy
        self._energy_drawn_from_input += input_energy
        self._charge_delivered += charge

    def idle_tick(self, duration: float, time: float) -> None:
        """Bill the converter's quiescent power for *duration* seconds of idling."""
        if duration < 0:
            raise PowerError("duration must be non-negative")
        vin = self.input_store.voltage(time)
        if vin <= 0:
            return
        quiescent_energy = self.efficiency_model.quiescent_power * duration
        self.input_store.draw_charge(quiescent_energy / vin, time)
        self._energy_drawn_from_input += quiescent_energy
