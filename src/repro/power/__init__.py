"""Power-supply substrate: the "energy side" of energy-modulated computing.

The paper's central scenario is a computational load powered not by a stable
battery rail but by an energy harvester with "limited power density and
unstable levels of power".  This package models that whole supply chain:

* ideal and AC supplies (:mod:`repro.power.supply`) — including the
  200 mV ± 100 mV, 1 MHz AC rail of Fig. 4;
* batteries with finite capacity (:mod:`repro.power.battery`);
* stochastic harvesters — vibration, solar, thermal
  (:mod:`repro.power.harvester`);
* storage / sampling capacitors whose voltage *sags as circuits draw charge*
  (:mod:`repro.power.capacitor`) — the physical mechanism behind the
  charge-to-digital converter;
* DC-DC converters with realistic efficiency curves (:mod:`repro.power.dcdc`);
* maximum-power-point tracking (:mod:`repro.power.mppt`);
* the composed harvester→storage→converter→load chain
  (:mod:`repro.power.power_chain`, the structure of Figs. 3 and 8).

All supplies implement the small :class:`~repro.power.supply.SupplyNode`
protocol (``voltage(time)`` + ``draw_charge(charge, time)``) which is what the
circuit packages talk to.
"""

from repro.power.supply import (
    SupplyNode,
    ConstantSupply,
    ACSupply,
    PiecewiseSupply,
    RampSupply,
)
from repro.power.battery import Battery
from repro.power.capacitor import Capacitor, SamplingCapacitor
from repro.power.harvester import (
    HarvesterModel,
    VibrationHarvester,
    SolarHarvester,
    ThermalHarvester,
    IntermittentHarvester,
)
from repro.power.dcdc import DCDCConverter, ConverterEfficiency
from repro.power.mppt import MPPTController
from repro.power.power_chain import PowerChain, ChainReport

__all__ = [
    "SupplyNode",
    "ConstantSupply",
    "ACSupply",
    "PiecewiseSupply",
    "RampSupply",
    "Battery",
    "Capacitor",
    "SamplingCapacitor",
    "HarvesterModel",
    "VibrationHarvester",
    "SolarHarvester",
    "ThermalHarvester",
    "IntermittentHarvester",
    "DCDCConverter",
    "ConverterEfficiency",
    "MPPTController",
    "PowerChain",
    "ChainReport",
]
