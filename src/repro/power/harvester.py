"""Energy-harvester source models.

The paper's target supplies are "energy-harvesters (EHs)... power levels may
be small and variable".  We model a harvester as a *power process*: a
function of time (and randomness) giving the instantaneous power the
environment offers, plus a source impedance characteristic so that the
maximum-power-point tracker (:mod:`repro.power.mppt`) has something to track.

Three concrete environments are provided, matching the EH literature the
paper cites:

* :class:`VibrationHarvester` — resonant electro-mechanical generator whose
  output collapses off-resonance (the MPPT example given in the paper);
* :class:`SolarHarvester` — diurnal/irradiance-driven photovoltaic cell;
* :class:`ThermalHarvester` — thermo-electric generator with a slowly
  wandering temperature gradient;
* :class:`IntermittentHarvester` — bursty on/off source ("energy is
  scavenged very sporadically") for testing power-gated and
  energy-modulated operation.

All randomness flows through a seeded :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, PowerError


class HarvesterModel:
    """Base class: a time-varying available-power process.

    Subclasses override :meth:`available_power`.  The base class provides
    the source model used by MPPT: the harvester behaves like a power source
    with an optimal load voltage ``v_mpp(time)``; operating the input at a
    different voltage wastes a quadratic-in-mismatch fraction of the power.
    """

    def __init__(self, peak_power: float, v_mpp_nominal: float,
                 name: str = "harvester", seed: Optional[int] = None) -> None:
        if peak_power <= 0:
            raise ConfigurationError("peak_power must be positive")
        if v_mpp_nominal <= 0:
            raise ConfigurationError("v_mpp_nominal must be positive")
        self.name = name
        self.peak_power = peak_power
        self.v_mpp_nominal = v_mpp_nominal
        self.rng = np.random.default_rng(seed)
        self._energy_harvested = 0.0

    # ------------------------------------------------------------------

    def available_power(self, time: float) -> float:
        """Raw environmental power available at *time*, in watts."""
        raise NotImplementedError

    def v_mpp(self, time: float) -> float:
        """Optimal (maximum-power-point) input voltage at *time*, in volts.

        The default model drifts the MPP voltage slowly (±10 %) so a static
        operating point loses power and a tracker visibly helps.
        """
        drift = 0.1 * math.sin(2.0 * math.pi * time / 7.3)
        return self.v_mpp_nominal * (1.0 + drift)

    def extracted_power(self, time: float, operating_voltage: float) -> float:
        """Power actually extracted when the input is held at *operating_voltage*.

        A normalised inverted parabola around the MPP: extracting at the MPP
        yields all the available power, at 0 V or 2·V_mpp it yields none.
        """
        if operating_voltage < 0:
            raise PowerError("operating voltage must be non-negative")
        available = self.available_power(time)
        vm = self.v_mpp(time)
        mismatch = (operating_voltage - vm) / vm
        efficiency = max(0.0, 1.0 - mismatch * mismatch)
        return available * efficiency

    def harvest(self, time: float, duration: float,
                operating_voltage: Optional[float] = None) -> float:
        """Integrate extracted energy over ``[time, time+duration)`` in joules.

        A small-step trapezoidal integration; *operating_voltage* defaults to
        the instantaneous MPP (i.e. a perfect tracker).
        """
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        steps = max(4, int(duration / (duration / 16)))
        dt = duration / steps
        energy = 0.0
        for i in range(steps):
            t = time + (i + 0.5) * dt
            v = operating_voltage if operating_voltage is not None else self.v_mpp(t)
            energy += self.extracted_power(t, v) * dt
        self._energy_harvested += energy
        return energy

    @property
    def energy_harvested(self) -> float:
        """Total energy harvested so far, in joules."""
        return self._energy_harvested


class VibrationHarvester(HarvesterModel):
    """Resonant vibration micro-generator.

    Power is maximal when the ambient vibration frequency matches the
    generator's resonant frequency; a Lorentzian response models the rolloff.
    The ambient frequency and amplitude perform a bounded random walk, making
    the supply "unstable within a specified range" as the paper assumes.
    """

    def __init__(self, peak_power: float = 100e-6, v_mpp_nominal: float = 1.2,
                 resonant_frequency: float = 50.0, q_factor: float = 20.0,
                 wander: float = 0.05, seed: Optional[int] = None,
                 name: str = "vibration") -> None:
        super().__init__(peak_power, v_mpp_nominal, name=name, seed=seed)
        if resonant_frequency <= 0 or q_factor <= 0:
            raise ConfigurationError("resonant_frequency and q_factor must be positive")
        if not (0.0 <= wander < 1.0):
            raise ConfigurationError("wander must lie in [0, 1)")
        self.resonant_frequency = resonant_frequency
        self.q_factor = q_factor
        self.wander = wander
        self._ambient_freq = resonant_frequency
        self._amplitude = 1.0
        self._last_step = 0.0

    def _random_walk(self, time: float) -> None:
        """Advance the ambient-condition random walk in 1-second strides."""
        while self._last_step + 1.0 <= time:
            self._last_step += 1.0
            self._ambient_freq *= 1.0 + self.wander * float(self.rng.normal(0, 0.3))
            self._ambient_freq = max(1.0, min(self._ambient_freq,
                                              4.0 * self.resonant_frequency))
            self._amplitude *= 1.0 + self.wander * float(self.rng.normal(0, 0.3))
            self._amplitude = max(0.05, min(self._amplitude, 2.0))

    def available_power(self, time: float) -> float:
        """Lorentzian-in-frequency, amplitude-scaled available power."""
        self._random_walk(time)
        detune = (self._ambient_freq - self.resonant_frequency) / (
            self.resonant_frequency / self.q_factor
        )
        response = 1.0 / (1.0 + detune * detune)
        return self.peak_power * self._amplitude * response


class SolarHarvester(HarvesterModel):
    """Indoor/outdoor photovoltaic source with a smooth irradiance profile.

    The irradiance follows a raised-cosine "day" of configurable period with
    multiplicative cloud noise; MPP voltage tracks irradiance weakly
    (logarithmically), as real PV cells do.
    """

    def __init__(self, peak_power: float = 1e-3, v_mpp_nominal: float = 0.5,
                 day_period: float = 600.0, cloud_sigma: float = 0.2,
                 seed: Optional[int] = None, name: str = "solar") -> None:
        super().__init__(peak_power, v_mpp_nominal, name=name, seed=seed)
        if day_period <= 0:
            raise ConfigurationError("day_period must be positive")
        if cloud_sigma < 0:
            raise ConfigurationError("cloud_sigma must be non-negative")
        self.day_period = day_period
        self.cloud_sigma = cloud_sigma
        self._cloud = 1.0
        self._last_step = -1.0

    def _irradiance(self, time: float) -> float:
        phase = 2.0 * math.pi * (time % self.day_period) / self.day_period
        return max(0.0, 0.5 * (1.0 - math.cos(phase)))

    def available_power(self, time: float) -> float:
        """Irradiance-shaped power with slowly varying cloud attenuation."""
        if time - self._last_step >= 1.0:
            self._last_step = time
            self._cloud = float(np.clip(
                self._cloud * math.exp(self.cloud_sigma * self.rng.normal(0, 0.2)),
                0.1, 1.0,
            ))
        return self.peak_power * self._irradiance(time) * self._cloud

    def v_mpp(self, time: float) -> float:
        """MPP voltage rises logarithmically with irradiance."""
        irradiance = max(1e-3, self._irradiance(time))
        return self.v_mpp_nominal * (0.85 + 0.15 * (1.0 + math.log10(irradiance)))


class ThermalHarvester(HarvesterModel):
    """Thermo-electric generator driven by a wandering temperature gradient."""

    def __init__(self, peak_power: float = 50e-6, v_mpp_nominal: float = 0.3,
                 gradient_period: float = 120.0, seed: Optional[int] = None,
                 name: str = "thermal") -> None:
        super().__init__(peak_power, v_mpp_nominal, name=name, seed=seed)
        if gradient_period <= 0:
            raise ConfigurationError("gradient_period must be positive")
        self.gradient_period = gradient_period

    def available_power(self, time: float) -> float:
        """Power follows the square of the (slowly oscillating) gradient."""
        gradient = 0.6 + 0.4 * math.sin(2.0 * math.pi * time / self.gradient_period)
        return self.peak_power * gradient * gradient


class IntermittentHarvester(HarvesterModel):
    """Bursty source: random on-periods of full power separated by dead time.

    This is the regime the paper calls "environments where energy is
    scavenged very sporadically" — the stress test for energy-modulated
    operation, where computation must happen inside the bursts.
    """

    def __init__(self, peak_power: float = 200e-6, v_mpp_nominal: float = 1.0,
                 mean_on_time: float = 0.5, mean_off_time: float = 2.0,
                 seed: Optional[int] = None, name: str = "intermittent") -> None:
        super().__init__(peak_power, v_mpp_nominal, name=name, seed=seed)
        if mean_on_time <= 0 or mean_off_time <= 0:
            raise ConfigurationError("on/off times must be positive")
        self.mean_on_time = mean_on_time
        self.mean_off_time = mean_off_time
        self._schedule_end = 0.0
        self._on = False
        self._next_toggle = 0.0

    def _advance_schedule(self, time: float) -> None:
        while self._next_toggle <= time:
            self._on = not self._on
            mean = self.mean_on_time if self._on else self.mean_off_time
            self._next_toggle += float(self.rng.exponential(mean))

    def available_power(self, time: float) -> float:
        """Full peak power during a burst, zero otherwise."""
        self._advance_schedule(time)
        return self.peak_power if self._on else 0.0


# ---------------------------------------------------------------------------
# Invariant adapter (the campaign fuzzer's harvester-energy probe)


#: Harvester environments by registry name, for declarative scenarios and
#: the fuzzer's draws.
HARVESTER_KINDS = {
    "vibration": VibrationHarvester,
    "solar": SolarHarvester,
    "thermal": ThermalHarvester,
    "intermittent": IntermittentHarvester,
}


def make_harvester(kind: str, seed: Optional[int] = None,
                   **overrides) -> HarvesterModel:
    """Build the harvester registered under *kind* (seeded, overridable)."""
    try:
        factory = HARVESTER_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(HARVESTER_KINDS))
        raise ConfigurationError(
            f"unknown harvester kind {kind!r}; choose from {known}") from None
    return factory(seed=seed, **overrides)


def harvester_energy_violations(kind, seed, times, voltage_scale=1.0):
    """Energy-bound violations of one harvester realisation.

    The power layer's second invariant adapter: replay the seeded
    environment *kind* at the (ascending) sample *times*, operating the
    input at ``voltage_scale × v_mpp``, and report every point where the
    model created energy.  Checked invariants:

    * available power is non-negative and bounded by twice the peak
      rating (the vibration amplitude walk is clamped at 2.0);
    * extracted power is non-negative and never exceeds the available
      power of the same environmental realisation;
    * :meth:`HarvesterModel.harvest` integrates to a non-negative energy
      bounded by the available-power bound times the duration.

    Two twin harvesters with the same seed observe the identical random
    environment (one is asked for available power, the other for
    extracted power), so the comparison is between numbers drawn from one
    realisation and the whole check replays deterministically.
    """
    observer = make_harvester(kind, seed=seed)
    extractor = make_harvester(kind, seed=seed)
    violations = []
    power_bound = 2.0 * observer.peak_power * (1.0 + 1e-12)
    previous_time = None
    for index, time in enumerate(times):
        time = float(time)
        if previous_time is not None and time <= previous_time:
            raise ConfigurationError("times must be strictly ascending")
        previous_time = time
        available = observer.available_power(time)
        operating = extractor.v_mpp(time) * float(voltage_scale)
        extracted = extractor.extracted_power(time, operating)
        if available < 0.0:
            violations.append(
                f"t={time!r}: available power is negative ({available!r} W)")
        if available > power_bound:
            violations.append(
                f"t={time!r}: available power {available!r} W exceeds "
                f"2x the peak rating {observer.peak_power!r} W")
        if extracted < 0.0:
            violations.append(
                f"t={time!r}: extracted power is negative ({extracted!r} W)")
        if extracted > available + 1e-12 * max(1.0, available):
            violations.append(
                f"t={time!r}: extracted {extracted!r} W exceeds the "
                f"available {available!r} W")
    if times:
        integrator = make_harvester(kind, seed=seed)
        duration = float(times[-1]) + 1.0
        energy = integrator.harvest(0.0, duration)
        if energy < 0.0:
            violations.append(f"harvest() returned negative energy "
                              f"({energy!r} J)")
        if energy > power_bound * duration:
            violations.append(
                f"harvest() over {duration!r} s returned {energy!r} J, "
                f"more than the {power_bound * duration!r} J power bound")
        if integrator.energy_harvested != energy:
            violations.append(
                "energy_harvested ledger disagrees with the harvest() "
                f"return ({integrator.energy_harvested!r} != {energy!r})")
    return violations
