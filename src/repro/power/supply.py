"""Supply-node protocol and ideal / time-varying voltage supplies.

Every circuit element in the library draws its operating voltage and its
energy from a *supply node*.  The protocol is intentionally tiny:

``voltage(time)``
    the instantaneous rail voltage seen by the load;
``draw_charge(charge, time)``
    the load took *charge* coulombs out of the node at *time* (ideal supplies
    just account for it, capacitors sag, batteries deplete);
``energy_delivered``
    total energy the node has handed to its loads so far.

The concrete supplies in this module have *infinite* energy — they model the
lab bench: a stable rail (:class:`ConstantSupply`), the AC rail of Fig. 4
(:class:`ACSupply`), arbitrary piecewise profiles used for the "SRAM under
varying Vdd" experiment of Fig. 7 (:class:`PiecewiseSupply`) and voltage
ramps (:class:`RampSupply`).  Finite-energy nodes live in
:mod:`repro.power.battery` and :mod:`repro.power.capacitor`.
"""

from __future__ import annotations

import math
from typing import List, Protocol, Sequence, Tuple, runtime_checkable

from repro.errors import ConfigurationError, PowerError


@runtime_checkable
class SupplyNode(Protocol):
    """Structural protocol implemented by every voltage source in the library."""

    def voltage(self, time: float) -> float:
        """Instantaneous rail voltage in volts at simulation *time*."""
        ...

    def draw_charge(self, charge: float, time: float) -> None:
        """Remove *charge* coulombs from the node at *time*."""
        ...

    @property
    def energy_delivered(self) -> float:
        """Total energy delivered to loads so far, in joules."""
        ...


class _BaseSupply:
    """Shared bookkeeping for the ideal (infinite-energy) supplies."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._charge_delivered = 0.0
        self._energy_delivered = 0.0

    def voltage(self, time: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def draw_charge(self, charge: float, time: float) -> None:
        """Account for a load drawing *charge* coulombs at *time*."""
        if charge < 0:
            raise PowerError(f"negative charge draw on supply {self.name!r}")
        voltage = self.voltage(time)
        self._charge_delivered += charge
        self._energy_delivered += charge * voltage

    def draw_energy(self, energy: float, time: float) -> None:
        """Account for an *energy* draw (joules); converts via the rail voltage."""
        if energy < 0:
            raise PowerError(f"negative energy draw on supply {self.name!r}")
        voltage = self.voltage(time)
        if voltage <= 0:
            raise PowerError(
                f"cannot draw energy from {self.name!r} at zero voltage"
            )
        self.draw_charge(energy / voltage, time)

    @property
    def charge_delivered(self) -> float:
        """Total charge delivered to loads, in coulombs."""
        return self._charge_delivered

    @property
    def energy_delivered(self) -> float:
        """Total energy delivered to loads, in joules."""
        return self._energy_delivered


class ConstantSupply(_BaseSupply):
    """An ideal DC rail at a fixed voltage (the classical battery-backed Vdd)."""

    def __init__(self, vdd: float, name: str = "vdd") -> None:
        super().__init__(name)
        if vdd < 0:
            raise ConfigurationError("vdd must be non-negative")
        self._vdd = vdd

    def voltage(self, time: float) -> float:
        """The rail voltage (independent of *time*)."""
        return self._vdd

    def set_voltage(self, vdd: float) -> None:
        """Reprogram the rail (models an ideal, instant DVS actuator)."""
        if vdd < 0:
            raise ConfigurationError("vdd must be non-negative")
        self._vdd = vdd


class ACSupply(_BaseSupply):
    """A sinusoidal rail: ``offset + amplitude·sin(2π·frequency·t + phase)``.

    Fig. 4 of the paper demonstrates a dual-rail counter operating correctly
    from exactly such a rail (offset 200 mV, amplitude 100 mV, 1 MHz).
    Negative excursions are clipped to zero — a real rectified harvester rail
    cannot go below ground.
    """

    def __init__(self, offset: float, amplitude: float, frequency: float,
                 phase: float = 0.0, name: str = "vac") -> None:
        super().__init__(name)
        if offset < 0 or amplitude < 0:
            raise ConfigurationError("offset and amplitude must be non-negative")
        if frequency <= 0:
            raise ConfigurationError("frequency must be positive")
        self.offset = offset
        self.amplitude = amplitude
        self.frequency = frequency
        self.phase = phase

    def voltage(self, time: float) -> float:
        """Instantaneous (clipped) sinusoidal rail voltage."""
        value = self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency * time + self.phase
        )
        return max(0.0, value)

    @property
    def minimum_voltage(self) -> float:
        """Lowest voltage the rail ever reaches."""
        return max(0.0, self.offset - self.amplitude)

    @property
    def maximum_voltage(self) -> float:
        """Highest voltage the rail ever reaches."""
        return self.offset + self.amplitude


class PiecewiseSupply(_BaseSupply):
    """A rail defined by (time, voltage) breakpoints with optional interpolation.

    Used for the Fig. 7 experiment: "the first writing works under low Vdd,
    it takes a long time, while the second write, at high Vdd, works much
    faster" — i.e. a step from 0.25 V to 1.0 V halfway through the run.
    """

    def __init__(self, breakpoints: Sequence[Tuple[float, float]],
                 interpolate: bool = False, name: str = "vpw") -> None:
        super().__init__(name)
        if not breakpoints:
            raise ConfigurationError("breakpoints must not be empty")
        times = [t for t, _ in breakpoints]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ConfigurationError("breakpoint times must strictly increase")
        if any(v < 0 for _, v in breakpoints):
            raise ConfigurationError("breakpoint voltages must be non-negative")
        if breakpoints[0][0] > 0:
            breakpoints = [(0.0, breakpoints[0][1])] + list(breakpoints)
        self.breakpoints: List[Tuple[float, float]] = list(breakpoints)
        self.interpolate = interpolate

    def voltage(self, time: float) -> float:
        """Rail voltage at *time* (held or linearly interpolated)."""
        points = self.breakpoints
        if time <= points[0][0]:
            return points[0][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if time < t1:
                if not self.interpolate:
                    return v0
                fraction = (time - t0) / (t1 - t0)
                return v0 + fraction * (v1 - v0)
        return points[-1][1]


class RampSupply(_BaseSupply):
    """A rail ramping linearly from *v_start* to *v_end* over *duration* seconds.

    Models supply ramp-up after a power-on-reset, or a slow brown-out; after
    the ramp the voltage holds at *v_end*.
    """

    def __init__(self, v_start: float, v_end: float, duration: float,
                 name: str = "vramp") -> None:
        super().__init__(name)
        if v_start < 0 or v_end < 0:
            raise ConfigurationError("voltages must be non-negative")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.v_start = v_start
        self.v_end = v_end
        self.duration = duration

    def voltage(self, time: float) -> float:
        """Rail voltage at *time* along the ramp (clamped at the endpoint)."""
        if time <= 0:
            return self.v_start
        if time >= self.duration:
            return self.v_end
        fraction = time / self.duration
        return self.v_start + fraction * (self.v_end - self.v_start)
