"""Maximum-power-point tracking (MPPT).

"In designing power supply for EH-based systems, people often use the
so-called maximum power-point tracking... a special controller whose aim is
to extract maximum power from the micro-generator" — the paper positions
MPPT as the supply-side half of the holistic loop (the consumption-side half
being the energy-modulated load).  :class:`MPPTController` implements the
classic perturb-and-observe algorithm against any
:class:`~repro.power.harvester.HarvesterModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.power.capacitor import Capacitor
from repro.power.harvester import HarvesterModel


@dataclass
class MPPTStep:
    """Record of one perturb-and-observe iteration."""

    time: float
    operating_voltage: float
    extracted_power: float
    harvested_energy: float


class MPPTController:
    """Perturb-and-observe maximum-power-point tracker.

    Every :meth:`step` the controller perturbs its operating voltage by a
    fixed delta; if the extracted power increased it keeps going the same
    direction, otherwise it reverses.  The harvested energy for the step
    interval is pushed into the storage capacitor.

    Parameters
    ----------
    harvester:
        The environmental source to track.
    store:
        Storage capacitor collecting the harvested energy.
    initial_voltage:
        Starting operating voltage in volts.
    perturbation:
        Voltage step applied each iteration, in volts.
    step_interval:
        Wall-clock duration each iteration integrates over, in seconds.
    """

    def __init__(self, harvester: HarvesterModel, store: Capacitor,
                 initial_voltage: float = 1.0, perturbation: float = 0.02,
                 step_interval: float = 0.05) -> None:
        if initial_voltage <= 0:
            raise ConfigurationError("initial_voltage must be positive")
        if perturbation <= 0:
            raise ConfigurationError("perturbation must be positive")
        if step_interval <= 0:
            raise ConfigurationError("step_interval must be positive")
        self.harvester = harvester
        self.store = store
        self.operating_voltage = initial_voltage
        self.perturbation = perturbation
        self.step_interval = step_interval
        self._direction = 1.0
        self._previous_power = 0.0
        self.history: List[MPPTStep] = []

    # ------------------------------------------------------------------

    def step(self, time: float) -> MPPTStep:
        """Run one perturb-and-observe iteration starting at *time*.

        Returns the recorded :class:`MPPTStep`; the harvested energy has
        already been deposited into the storage capacitor.
        """
        power = self.harvester.extracted_power(time, self.operating_voltage)
        if power < self._previous_power:
            self._direction = -self._direction
        self._previous_power = power
        self.operating_voltage = max(
            0.05, self.operating_voltage + self._direction * self.perturbation
        )
        energy = self.harvester.harvest(
            time, self.step_interval, operating_voltage=self.operating_voltage
        )
        self.store.add_energy(energy, time + self.step_interval)
        record = MPPTStep(
            time=time,
            operating_voltage=self.operating_voltage,
            extracted_power=power,
            harvested_energy=energy,
        )
        self.history.append(record)
        return record

    def run(self, start_time: float, duration: float) -> List[MPPTStep]:
        """Run the tracker over ``[start_time, start_time+duration)``."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        steps: List[MPPTStep] = []
        t = start_time
        while t < start_time + duration:
            steps.append(self.step(t))
            t += self.step_interval
        return steps

    # ------------------------------------------------------------------

    def tracking_efficiency(self) -> float:
        """Harvested energy relative to a perfect (always-at-MPP) tracker.

        Returns a value in (0, 1]; the benchmark for Fig. 3/8 reports it to
        show the supply-side adaptation working.
        """
        if not self.history:
            return 0.0
        actual = sum(step.harvested_energy for step in self.history)
        ideal = 0.0
        for step in self.history:
            ideal += self.harvester.available_power(step.time) * self.step_interval
        if ideal <= 0:
            return 1.0
        return min(1.0, actual / ideal)

    def energy_harvested(self) -> float:
        """Total energy pushed into the store by this controller, in joules."""
        return sum(step.harvested_energy for step in self.history)
