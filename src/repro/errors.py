"""Domain-specific exceptions used across the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the simulator can catch a single base class.  The
hierarchy mirrors the major subsystems: device models, the event kernel, the
power substrate, circuit structure, memory, sensing and the system layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class ModelError(ReproError):
    """A device/energy model was evaluated outside its validity range."""


class SimulationError(ReproError):
    """The discrete-event kernel detected an inconsistent state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with an invalid payload."""


class DeadlockError(SimulationError):
    """The simulation ran out of events while components were still waiting."""


class HazardError(SimulationError):
    """A hazard (glitch) was detected on a signal that must be hazard-free.

    Speed-independent circuits must be hazard-free by construction; if the
    structural checks in :mod:`repro.selftimed` ever observe a hazard this
    error is raised instead of silently producing wrong behaviour.
    """


class PowerError(ReproError):
    """A power-substrate component was driven outside its operating range."""


class SupplyCollapseError(PowerError):
    """The supply voltage fell below the minimum operating voltage of a load.

    This is not always fatal: energy-modulated designs *expect* the supply to
    collapse (e.g. the charge-to-digital converter runs its capacitor down on
    purpose) and catch this exception to detect completion.
    """


class EnergyAccountingError(PowerError):
    """Energy bookkeeping went inconsistent (negative energy, NaN, ...)."""


class ProtocolError(ReproError):
    """A handshake protocol rule was violated (e.g. ack before req)."""


class CompletionDetectionError(ReproError):
    """Completion detection logic observed an ill-formed dual-rail code word."""


class MemoryError_(ReproError):
    """SRAM-specific failure (address out of range, retention loss, ...).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`.
    """


class AddressError(MemoryError_):
    """An SRAM access targeted an address outside the array."""


class RetentionError(MemoryError_):
    """An SRAM cell lost its stored value (supply below retention voltage)."""


class SensorError(ReproError):
    """A voltage sensor was used outside its calibrated/operating range."""


class CalibrationError(SensorError):
    """A calibration table was queried outside its domain or is ill-formed."""


class SchedulerError(ReproError):
    """The energy-token task scheduler was given an infeasible problem."""


class ArbitrationError(ReproError):
    """Soft-arbitration / concurrency-control invariant violated."""
