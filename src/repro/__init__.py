"""repro — a behavioural reproduction of "Energy-Modulated Computing".

The library implements, in pure Python, the full stack sketched by
A. Yakovlev's DATE 2011 vision paper: voltage-aware device and energy models,
an energy-conserving discrete-event kernel, energy-harvesting power chains,
self-timed (speed-independent) circuit primitives, the speed-independent
SRAM, the charge-to-digital and reference-free voltage sensors, and the
system-level energy-modulated policy layer (power-adaptive control,
energy-token scheduling, soft arbitration, stochastic concurrency analysis
and game-theoretic power management).

Quick start
-----------

>>> from repro import get_technology
>>> from repro.core import SpeedIndependentDesign, BundledDataDesign, qos_vs_vdd
>>> tech = get_technology("cmos90")
>>> design1 = SpeedIndependentDesign(tech)
>>> design2 = BundledDataDesign(tech)
>>> curve1 = qos_vs_vdd(design1, [0.2, 0.4, 0.6, 0.8, 1.0])
>>> curve2 = qos_vs_vdd(design2, [0.2, 0.4, 0.6, 0.8, 1.0])
>>> curve1.onset_voltage() < curve2.onset_voltage()   # Design 1 wakes up earlier
True

Subpackages
-----------

============================  ==================================================
:mod:`repro.models`           device, delay and energy models (90 nm default)
:mod:`repro.sim`              discrete-event kernel with energy accounting
:mod:`repro.power`            supplies, harvesters, capacitors, DC-DC, MPPT
:mod:`repro.selftimed`        self-timed gates, counters, handshakes, pipelines
:mod:`repro.sram`             the speed-independent SRAM and its baselines
:mod:`repro.sensors`          charge-to-digital, ring-oscillator and
                              reference-free voltage sensors
:mod:`repro.core`             the energy-modulated policy layer (the paper's
                              contribution)
:mod:`repro.analysis`         sweeps, metrics, Monte-Carlo, text reports
============================  ==================================================
"""

from repro.errors import (
    ConfigurationError,
    ModelError,
    PowerError,
    ReproError,
    SchedulerError,
    SimulationError,
    SupplyCollapseError,
)
from repro.models import Technology
from repro.models.technology import get_technology
from repro.power import (
    ACSupply,
    Capacitor,
    ConstantSupply,
    PowerChain,
    SamplingCapacitor,
    VibrationHarvester,
)
from repro.selftimed import DualRailCounter, SelfTimedCounter, ToggleFlipFlop
from repro.sensors import ChargeToDigitalConverter, ReferenceFreeVoltageSensor
from repro.sim import Simulator
from repro.sram import SpeedIndependentSRAM, BundledSRAM, SRAMConfig

__version__ = "1.0.0"

#: Experiment-execution names re-exported lazily (PEP 562): the session
#: facade is the documented front door (``from repro import Session``),
#: but eager imports here would pull the whole analysis stack into every
#: ``import repro`` — and would double-import the analysis modules under
#: their ``python -m repro.analysis.X`` entry points.
_LAZY_EXPORTS = {
    "Session": "repro.analysis.session",
    "RunConfig": "repro.analysis.session",
    "RunHandle": "repro.analysis.session",
    "default_session": "repro.analysis.session",
    "Executor": "repro.analysis.runner",
    "ExperimentPlan": "repro.analysis.runner",
    "ExperimentResult": "repro.analysis.runner",
    "ResultCache": "repro.analysis.cache",
    "DistribBackend": "repro.analysis.distrib",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "__version__",
    "Session",
    "RunConfig",
    "RunHandle",
    "default_session",
    "Executor",
    "ExperimentPlan",
    "ExperimentResult",
    "ResultCache",
    "DistribBackend",
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "SimulationError",
    "PowerError",
    "SupplyCollapseError",
    "SchedulerError",
    "Technology",
    "get_technology",
    "Simulator",
    "ConstantSupply",
    "ACSupply",
    "Capacitor",
    "SamplingCapacitor",
    "VibrationHarvester",
    "PowerChain",
    "ToggleFlipFlop",
    "SelfTimedCounter",
    "DualRailCounter",
    "SpeedIndependentSRAM",
    "BundledSRAM",
    "SRAMConfig",
    "ChargeToDigitalConverter",
    "ReferenceFreeVoltageSensor",
]
