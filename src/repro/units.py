"""Physical unit helpers and constants.

The whole library works in plain SI units carried by ``float`` values:

* time        — seconds
* voltage     — volts
* current     — amperes
* charge      — coulombs
* capacitance — farads
* energy      — joules
* power       — watts
* frequency   — hertz

These helpers exist purely for readability at call sites
(``delay=ns(1.2)`` reads better than ``delay=1.2e-9``) and for formatting
quantities in reports with engineering prefixes.
"""

from __future__ import annotations

import math
from typing import Tuple

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Elementary charge (C).
ELEMENTARY_CHARGE = 1.602176634e-19

#: Default junction temperature used by the device models (kelvin).
ROOM_TEMPERATURE_K = 300.0


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Return the thermal voltage ``kT/q`` in volts at *temperature_k*.

    At 300 K this is approximately 25.85 mV; it sets the scale of
    sub-threshold conduction and hence of how quickly logic slows down when
    Vdd drops toward the transistor threshold.
    """
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE


# ---------------------------------------------------------------------------
# Scaling helpers (readability sugar)
# ---------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Identity helper for symmetric call sites."""
    return float(value)


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return float(value) * 1e-3


def us(value: float) -> float:
    """Microseconds to seconds."""
    return float(value) * 1e-6


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return float(value) * 1e-9


def ps(value: float) -> float:
    """Picoseconds to seconds."""
    return float(value) * 1e-12


def mv(value: float) -> float:
    """Millivolts to volts."""
    return float(value) * 1e-3


def ua(value: float) -> float:
    """Microamperes to amperes."""
    return float(value) * 1e-6


def na(value: float) -> float:
    """Nanoamperes to amperes."""
    return float(value) * 1e-9


def pf(value: float) -> float:
    """Picofarads to farads."""
    return float(value) * 1e-12


def ff(value: float) -> float:
    """Femtofarads to farads."""
    return float(value) * 1e-15


def pj(value: float) -> float:
    """Picojoules to joules."""
    return float(value) * 1e-12


def fj(value: float) -> float:
    """Femtojoules to joules."""
    return float(value) * 1e-15


def nw(value: float) -> float:
    """Nanowatts to watts."""
    return float(value) * 1e-9


def uw(value: float) -> float:
    """Microwatts to watts."""
    return float(value) * 1e-6


def mw(value: float) -> float:
    """Milliwatts to watts."""
    return float(value) * 1e-3


def khz(value: float) -> float:
    """Kilohertz to hertz."""
    return float(value) * 1e3


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return float(value) * 1e6


# ---------------------------------------------------------------------------
# Engineering-notation formatting
# ---------------------------------------------------------------------------

_PREFIXES: Tuple[Tuple[float, str], ...] = (
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
)


def eng(value: float, unit: str = "", digits: int = 3) -> str:
    """Format *value* with an engineering prefix, e.g. ``eng(5.8e-12, "J")``
    returns ``"5.8 pJ"``.

    Zero, NaN and infinities are rendered without a prefix.  Negative values
    keep their sign.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g} {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def clamp(value: float, low: float, high: float) -> float:
    """Clamp *value* into ``[low, high]``."""
    if low > high:
        raise ValueError(f"invalid clamp range [{low}, {high}]")
    return max(low, min(high, value))


def lerp(x: float, x0: float, x1: float, y0: float, y1: float) -> float:
    """Linear interpolation of ``y`` at *x* between points (x0, y0), (x1, y1)."""
    if x1 == x0:
        return 0.5 * (y0 + y1)
    t = (x - x0) / (x1 - x0)
    return y0 + t * (y1 - y0)
