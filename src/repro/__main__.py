"""``python -m repro`` — the consolidated experiment CLI.

Thin launcher: all behaviour lives in :mod:`repro.cli` (which the
``repro`` console script also points at), so ``python -m repro`` and
``repro`` are the same program.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
