"""Per-gate delay and energy model.

A :class:`GateModel` answers the two questions the event-driven simulator
asks for every logic transition:

* *how long* does the output take to switch, given the instantaneous supply
  voltage and the capacitive load being driven, and
* *how much energy* does the transition draw from that supply.

Both depend on the gate type (an inverter switches faster and costs less than
a C-element of the same drive), the transistor model and the technology.  The
gate types provided cover everything the paper's circuits need: plain
inverters and NAND/NOR for bundled-data logic, C-elements and dual-rail
completion gates for the speed-independent designs, and the toggle flip-flop
used by the charge-to-digital converter.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ModelError
from repro.models.mosfet import MosfetModel
from repro.models.technology import Technology


class GateType(enum.Enum):
    """Gate archetypes with distinct drive / capacitance / complexity factors.

    The three numbers attached to each member are, in order:

    * ``logical_effort`` — ratio of the gate's input capacitance to an
      inverter delivering the same output current (Sutherland's logical
      effort);
    * ``parasitic`` — intrinsic output capacitance in units of the unit
      inverter's parasitic capacitance;
    * ``transistors`` — transistor count, used for leakage scaling.
    """

    INVERTER = ("inverter", 1.0, 1.0, 2)
    BUFFER = ("buffer", 1.0, 2.0, 4)
    NAND2 = ("nand2", 4.0 / 3.0, 2.0, 4)
    NOR2 = ("nor2", 5.0 / 3.0, 2.0, 4)
    AND2 = ("and2", 4.0 / 3.0, 3.0, 6)
    OR2 = ("or2", 5.0 / 3.0, 3.0, 6)
    XOR2 = ("xor2", 2.0, 4.0, 8)
    C_ELEMENT = ("c_element", 2.0, 3.0, 8)
    C_ELEMENT3 = ("c_element3", 2.5, 4.0, 10)
    TOGGLE = ("toggle", 2.5, 5.0, 14)
    LATCH = ("latch", 1.5, 3.0, 8)
    SRAM_CELL = ("sram_cell", 1.2, 1.0, 6)
    SRAM_CELL_8T = ("sram_cell_8t", 1.3, 1.2, 8)
    SENSE_AMP = ("sense_amp", 2.0, 4.0, 10)
    WRITE_DRIVER = ("write_driver", 1.0, 3.0, 6)
    MUTEX = ("mutex", 2.0, 3.0, 8)

    def __init__(self, label: str, logical_effort: float, parasitic: float,
                 transistors: int) -> None:
        self.label = label
        self.logical_effort = logical_effort
        self.parasitic = parasitic
        self.transistors = transistors


@dataclass(frozen=True)
class GateModel:
    """Delay/energy model for a single gate instance.

    Parameters
    ----------
    technology:
        Process parameter set.
    gate_type:
        One of :class:`GateType`; sets logical effort, parasitics, leakage.
    drive_strength:
        Sizing factor relative to a minimum-size gate (X1, X2, X4 ...).
    vth_offset, drive_derating:
        Forwarded to the underlying :class:`~repro.models.mosfet.MosfetModel`
        (used for corners and for intentionally slow paths).
    activity_factor:
        Fraction of the rail-to-rail swing the output actually performs per
        "transition" reported to the simulator (1.0 for full-swing logic).
    """

    technology: Technology
    gate_type: GateType = GateType.INVERTER
    drive_strength: float = 1.0
    vth_offset: float = 0.0
    drive_derating: float = 1.0
    activity_factor: float = 1.0
    _mosfet: MosfetModel = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.drive_strength <= 0:
            raise ModelError("drive_strength must be positive")
        if not (0.0 < self.activity_factor <= 1.0):
            raise ModelError("activity_factor must lie in (0, 1]")
        width = self.technology.min_width_um * 3.0 * self.drive_strength
        object.__setattr__(
            self,
            "_mosfet",
            MosfetModel(
                technology=self.technology,
                width_um=width,
                vth_offset=self.vth_offset,
                drive_derating=self.drive_derating,
            ),
        )

    # ------------------------------------------------------------------
    # Capacitances
    # ------------------------------------------------------------------

    @property
    def input_capacitance(self) -> float:
        """Capacitance presented to whatever drives this gate, in farads."""
        unit_cin = self.technology.unit_inverter_input_cap
        return unit_cin * self.gate_type.logical_effort * self.drive_strength

    @property
    def parasitic_capacitance(self) -> float:
        """Intrinsic output (self-load) capacitance in farads."""
        unit_cp = self.technology.unit_inverter_output_cap
        return unit_cp * self.gate_type.parasitic * self.drive_strength

    def total_load(self, external_load: float) -> float:
        """Total switched capacitance for a given external load in farads."""
        if external_load < 0:
            raise ModelError("external load must be non-negative")
        return self.parasitic_capacitance + external_load

    # ------------------------------------------------------------------
    # Delay
    # ------------------------------------------------------------------

    def delay(self, vdd: float, external_load: Optional[float] = None) -> float:
        """Propagation delay in seconds at supply *vdd* driving *external_load*.

        ``t = C_total · Vdd / (2 · I_on(Vdd))`` — the classical CV/I estimate
        with the factor 2 accounting for switching at the 50 % crossing.
        Raises :class:`~repro.errors.ModelError` if *vdd* is below the
        technology's minimum functional voltage (the caller — usually a
        supply node — decides whether that means "stall" or "fail").
        """
        tech = self.technology
        if vdd < tech.vdd_min:
            raise ModelError(
                f"vdd={vdd:.3f} V below functional minimum {tech.vdd_min:.3f} V "
                f"for {tech.name}"
            )
        if external_load is None:
            external_load = self.input_capacitance  # fan-out of one like gate
        load = self.total_load(external_load)
        current = self._mosfet.on_current(vdd)
        if current <= 0 or not math.isfinite(current):
            raise ModelError(f"non-physical drive current {current} at vdd={vdd}")
        return load * vdd / (2.0 * current)

    def frequency(self, vdd: float, external_load: Optional[float] = None,
                  stages: int = 2) -> float:
        """Equivalent toggle frequency in hertz of a *stages*-deep loop.

        Used for ring-oscillator style sensors: a loop of ``stages`` gates
        oscillates at ``1 / (2 · stages · delay)``.
        """
        if stages < 1:
            raise ModelError("stages must be >= 1")
        return 1.0 / (2.0 * stages * self.delay(vdd, external_load))

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------

    def switching_energy(self, vdd: float,
                         external_load: Optional[float] = None) -> float:
        """Energy in joules drawn from the supply for one output transition.

        A full charge of the load through the PMOS network draws ``C·Vdd²``
        from the rail, half of which is dissipated on the way and half stored
        (and later dumped on the falling edge).  Averaged over a
        rising/falling pair each transition therefore costs ``½·C·Vdd²``,
        scaled by the gate's activity factor.
        """
        if vdd < 0:
            raise ModelError("vdd must be non-negative")
        if external_load is None:
            external_load = self.input_capacitance
        load = self.total_load(external_load)
        return 0.5 * load * vdd * vdd * self.activity_factor

    def short_circuit_energy(self, vdd: float,
                             external_load: Optional[float] = None) -> float:
        """Crowbar (short-circuit) energy per transition in joules.

        Modelled as a fixed 10 % of the switching energy above threshold and
        zero below it (both devices can no longer conduct strongly at once).
        """
        if vdd <= self.technology.vth:
            return 0.0
        return 0.10 * self.switching_energy(vdd, external_load)

    def leakage_power(self, vdd: float) -> float:
        """Static power in watts burned while the gate is idle at *vdd*."""
        per_transistor = self._mosfet.leakage_current(vdd) / 2.0
        return per_transistor * self.gate_type.transistors * vdd

    def transition_energy(self, vdd: float,
                          external_load: Optional[float] = None) -> float:
        """Total dynamic energy (switching + short-circuit) per transition."""
        return (self.switching_energy(vdd, external_load)
                + self.short_circuit_energy(vdd, external_load))

    def transition_charge(self, vdd: float,
                          external_load: Optional[float] = None) -> float:
        """Charge in coulombs drawn from the supply for one transition.

        The charge-to-digital converter's proportionality between sampled
        charge and final count (Fig. 11) comes directly from this quantity.
        """
        if vdd <= 0:
            return 0.0
        return self.transition_energy(vdd, external_load) / vdd * 2.0
