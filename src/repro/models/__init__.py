"""Device, delay and energy models.

This package replaces the UMC 90 nm SPICE models and Cadence simulations used
by the paper with analytical models that reproduce the *scaling shapes* the
paper relies on:

* how gate delay grows as Vdd approaches and drops below the threshold
  voltage (the reason self-timed logic is needed at all);
* how SRAM bitline delay scales *differently* from logic delay (Fig. 5);
* how switching and leakage energy trade off to give a minimum-energy point
  around 0.4 V (the SI SRAM result).

Public API
----------
:class:`~repro.models.technology.Technology`
    Named parameter sets (90 nm default, plus 65/180 nm).
:class:`~repro.models.mosfet.MosfetModel`
    Continuous weak/strong-inversion drain-current model.
:class:`~repro.models.gate.GateModel`
    Per-gate delay and energy as a function of Vdd and load.
:class:`~repro.models.delay.InverterChain`, :func:`~repro.models.delay.fo4_delay`
    Logic-delay reference rulers.
:class:`~repro.models.energy.EnergyModel`
    Switching / leakage / total energy-per-operation model.
:class:`~repro.models.variation.ProcessVariation`, :class:`~repro.models.variation.Corner`
    Corners and Monte-Carlo parameter sampling.
"""

from repro.models.technology import Technology, TECHNOLOGIES
from repro.models.mosfet import MosfetModel
from repro.models.gate import GateModel, GateType
from repro.models.delay import InverterChain, fo4_delay, logical_effort_delay
from repro.models.energy import EnergyModel, EnergyBreakdown
from repro.models.variation import Corner, ProcessVariation

__all__ = [
    "Technology",
    "TECHNOLOGIES",
    "MosfetModel",
    "GateModel",
    "GateType",
    "InverterChain",
    "fo4_delay",
    "logical_effort_delay",
    "EnergyModel",
    "EnergyBreakdown",
    "Corner",
    "ProcessVariation",
]
