"""Operation-level energy model: switching vs leakage and the minimum-energy point.

The key quantitative claim of the paper's SRAM section is that the
speed-independent SRAM has a *minimum energy per operation around Vdd = 0.4 V*
(5.8 pJ per 16-bit write at 1 V versus 1.9 pJ at 0.4 V).  The mechanism is
generic and well known: switching energy falls quadratically with Vdd while
the leakage energy *per operation* grows as operations get slower, so their
sum has an interior minimum.  :class:`EnergyModel` captures exactly that
trade-off for an arbitrary block characterised by a transition count, a
switched capacitance and an idle leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.errors import ModelError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one operation at one supply voltage, split by mechanism."""

    vdd: float
    switching: float
    short_circuit: float
    leakage: float

    @property
    def total(self) -> float:
        """Total energy in joules."""
        return self.switching + self.short_circuit + self.leakage

    def as_dict(self) -> dict:
        """Plain-dict view for report rendering."""
        return {
            "vdd": self.vdd,
            "switching": self.switching,
            "short_circuit": self.short_circuit,
            "leakage": self.leakage,
            "total": self.total,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Energy-per-operation model for a digital block.

    Parameters
    ----------
    technology:
        Process parameter set.
    transitions_per_op:
        Number of gate output transitions one operation causes (e.g. the
        number of bit-line, word-line and control transitions of one SRAM
        write).
    switched_cap_per_transition:
        Average capacitance switched per transition, in farads.
    leakage_gates:
        Equivalent number of minimum-size inverters whose leakage is burned
        for the whole duration of the operation (idle parts of the array
        leak too).
    delay_model:
        Callable mapping Vdd (volts) to operation latency (seconds).  This is
        what couples "slower at low Vdd" to "more leakage per operation".
    """

    technology: Technology
    transitions_per_op: float
    switched_cap_per_transition: float
    leakage_gates: float
    delay_model: Callable[[float], float]

    def __post_init__(self) -> None:
        if self.transitions_per_op <= 0:
            raise ModelError("transitions_per_op must be positive")
        if self.switched_cap_per_transition <= 0:
            raise ModelError("switched_cap_per_transition must be positive")
        if self.leakage_gates < 0:
            raise ModelError("leakage_gates must be non-negative")

    # ------------------------------------------------------------------

    def _reference_gate(self) -> GateModel:
        return GateModel(technology=self.technology, gate_type=GateType.INVERTER)

    def switching_energy(self, vdd: float) -> float:
        """Dynamic switching energy of one operation in joules."""
        if vdd < 0:
            raise ModelError("vdd must be non-negative")
        per_transition = 0.5 * self.switched_cap_per_transition * vdd * vdd
        return self.transitions_per_op * per_transition

    def short_circuit_energy(self, vdd: float) -> float:
        """Crowbar energy of one operation (zero below threshold)."""
        if vdd <= self.technology.vth:
            return 0.0
        return 0.10 * self.switching_energy(vdd)

    def leakage_energy(self, vdd: float) -> float:
        """Leakage energy integrated over the operation's duration in joules."""
        latency = self.delay_model(vdd)
        if latency < 0:
            raise ModelError("delay_model returned a negative latency")
        leak_power = self.leakage_gates * self._reference_gate().leakage_power(vdd)
        return leak_power * latency

    def breakdown(self, vdd: float) -> EnergyBreakdown:
        """Full energy breakdown of one operation at supply *vdd*."""
        return EnergyBreakdown(
            vdd=vdd,
            switching=self.switching_energy(vdd),
            short_circuit=self.short_circuit_energy(vdd),
            leakage=self.leakage_energy(vdd),
        )

    def energy_per_op(self, vdd: float) -> float:
        """Total energy of one operation at supply *vdd* in joules."""
        return self.breakdown(vdd).total

    # ------------------------------------------------------------------
    # Sweeps and the minimum-energy point
    # ------------------------------------------------------------------

    def sweep(self, vdd_values: Sequence[float]) -> List[EnergyBreakdown]:
        """Evaluate :meth:`breakdown` over a sequence of supply voltages."""
        if not vdd_values:
            raise ModelError("vdd_values must not be empty")
        return [self.breakdown(v) for v in vdd_values]

    def minimum_energy_point(self, vdd_low: float, vdd_high: float,
                             samples: int = 200) -> Tuple[float, float]:
        """Locate the supply voltage minimising energy per operation.

        Returns ``(vdd_opt, energy_opt)``.  A dense scan followed by a local
        golden-section refinement is plenty for the smooth single-minimum
        curves this model produces.
        """
        if not (0 < vdd_low < vdd_high):
            raise ModelError("require 0 < vdd_low < vdd_high")
        if samples < 3:
            raise ModelError("samples must be >= 3")
        step = (vdd_high - vdd_low) / (samples - 1)
        grid = [vdd_low + i * step for i in range(samples)]
        energies = [self.energy_per_op(v) for v in grid]
        idx = energies.index(min(energies))
        lo = grid[max(0, idx - 1)]
        hi = grid[min(samples - 1, idx + 1)]

        golden = 0.381966011250105
        a, b = lo, hi
        for _ in range(60):
            c = a + golden * (b - a)
            d = b - golden * (b - a)
            if self.energy_per_op(c) < self.energy_per_op(d):
                b = d
            else:
                a = c
        vdd_opt = 0.5 * (a + b)
        return vdd_opt, self.energy_per_op(vdd_opt)

    def energy_delay_product(self, vdd: float) -> float:
        """Energy-delay product (J·s) of one operation at supply *vdd*."""
        return self.energy_per_op(vdd) * self.delay_model(vdd)
