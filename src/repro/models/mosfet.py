"""Continuous weak/strong-inversion MOSFET drive-current model.

The paper's circuits operate across an extreme supply range (0.2 V – 1 V in
90 nm, i.e. from deep sub-threshold to nominal).  The single property all of
its arguments rest on is how the *drive current* — and therefore gate delay —
degrades as Vdd approaches and crosses the threshold voltage:

* above threshold the alpha-power law holds,  ``I ∝ (Vdd - Vth)^α``;
* below threshold the current is exponential, ``I ∝ exp((Vdd - Vth)/(n·kT/q))``;
* the transition between the two regions must be smooth, otherwise sweeps of
  delay/energy versus Vdd develop artificial kinks.

We use an EKV-flavoured interpolation based on ``ln(1 + exp(x))`` (the
"softplus" function), raised to the alpha power, and normalised so that the
current at nominal Vdd equals the technology's quoted on-current.  This gives
one continuous, monotonic expression valid over the whole range, which is all
the behavioural simulator needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.models.technology import Technology
from repro.units import thermal_voltage


def _softplus(x: float) -> float:
    """Numerically stable ``ln(1 + exp(x))``."""
    if x > 40.0:
        return x
    if x < -40.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


@dataclass(frozen=True)
class MosfetModel:
    """Drive-current and leakage model for one transistor (or stack).

    Parameters
    ----------
    technology:
        The :class:`~repro.models.technology.Technology` supplying Vth, the
        sub-threshold slope factor, alpha and the per-micron current scales.
    width_um:
        Effective transistor width in microns.
    vth_offset:
        Additional threshold voltage in volts.  SRAM cell access paths,
        stacked transistors (8T cells) and slow process corners are modelled
        by raising the effective threshold; fast corners by lowering it.
    drive_derating:
        Multiplicative factor on the on-current (models stacking factor,
        mobility differences between NMOS/PMOS, corner strength).
    """

    technology: Technology
    width_um: float = 1.0
    vth_offset: float = 0.0
    drive_derating: float = 1.0

    def __post_init__(self) -> None:
        if self.width_um <= 0:
            raise ModelError(f"width_um must be positive, got {self.width_um}")
        if self.drive_derating <= 0:
            raise ModelError(
                f"drive_derating must be positive, got {self.drive_derating}"
            )

    # ------------------------------------------------------------------
    # Core current expressions
    # ------------------------------------------------------------------

    @property
    def effective_vth(self) -> float:
        """Threshold voltage including the per-device offset."""
        return self.technology.vth + self.vth_offset

    def _inversion_charge(self, vgs: float) -> float:
        """Dimensionless inversion-charge factor at gate-source voltage *vgs*.

        ``softplus((vgs - vth) / (n·Ut)) ** alpha`` — exponential below
        threshold, power-law above, smooth in between.
        """
        tech = self.technology
        n_ut = tech.subthreshold_slope_factor * thermal_voltage(tech.temperature_k)
        x = (vgs - self.effective_vth) / n_ut
        return _softplus(x) ** tech.alpha

    def on_current(self, vgs: float) -> float:
        """Saturation drive current in amperes with gate at *vgs* volts.

        Normalised so that at the technology's nominal Vdd (and zero
        ``vth_offset``, unit derating) the current equals
        ``i_on_per_um × width``.
        """
        if vgs < 0:
            raise ModelError(f"vgs must be non-negative, got {vgs}")
        tech = self.technology
        reference = MosfetModel(technology=tech)._inversion_charge(tech.vdd_nominal)
        if reference <= 0:
            raise ModelError("technology parameters give zero reference current")
        scale = tech.i_on_per_um * self.width_um * self.drive_derating / reference
        return scale * self._inversion_charge(vgs)

    def leakage_current(self, vdd: float) -> float:
        """Sub-threshold (off-state) leakage in amperes at supply *vdd*.

        Modelled as the technology's quoted per-micron leakage at nominal
        Vdd, scaled by a DIBL-like exponential in the supply voltage and by
        the same threshold offset used for the on-current (stacked devices
        leak exponentially less).
        """
        if vdd < 0:
            raise ModelError(f"vdd must be non-negative, got {vdd}")
        if vdd == 0:
            return 0.0
        tech = self.technology
        ut = thermal_voltage(tech.temperature_k)
        n_ut = tech.subthreshold_slope_factor * ut
        dibl = 0.08  # V of effective Vth reduction per V of Vds, typical 90 nm
        exponent = (dibl * (vdd - tech.vdd_nominal) - self.vth_offset) / n_ut
        return tech.i_leak_per_um * self.width_um * math.exp(exponent)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def on_off_ratio(self, vdd: float) -> float:
        """Ratio of drive current to leakage at supply *vdd*.

        This collapses toward 1 in deep sub-threshold, which is the physical
        reason the minimum-energy point exists: below it, operations take so
        long that leakage dominates.
        """
        leak = self.leakage_current(vdd)
        if leak <= 0:
            return math.inf
        return self.on_current(vdd) / leak

    def discharge_time(self, vdd: float, capacitance: float, swing: float) -> float:
        """Time in seconds to slew *capacitance* farads by *swing* volts.

        First-order model: constant-current discharge at the saturation drive
        current, ``t = C·ΔV / I_on(vdd)``.  Used for bitlines and long wires.
        """
        if capacitance < 0 or swing < 0:
            raise ModelError("capacitance and swing must be non-negative")
        current = self.on_current(vdd)
        if current <= 0:
            raise ModelError(f"zero drive current at vdd={vdd}")
        return capacitance * swing / current
