"""Logic-delay reference rulers: inverter chains, FO4 and logical effort.

The paper uses the delay of an inverter chain as the *ruler* against which
other delays are expressed (Fig. 5 expresses SRAM read latency in "number of
inverter delays"; the reference-free voltage sensor of Fig. 12 literally uses
an inverter chain as the measuring tape).  This module provides those rulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ModelError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology


def fo4_delay(technology: Technology, vdd: float) -> float:
    """Fan-out-of-4 inverter delay in seconds at supply *vdd*.

    The FO4 delay is the canonical process-independent unit of logic delay:
    one inverter driving four copies of itself.
    """
    inverter = GateModel(technology=technology, gate_type=GateType.INVERTER)
    return inverter.delay(vdd, external_load=4.0 * inverter.input_capacitance)


def logical_effort_delay(technology: Technology, vdd: float,
                         stage_efforts: Sequence[float],
                         parasitics: Sequence[float] = ()) -> float:
    """Delay in seconds of a multi-stage path given per-stage efforts.

    Implements the method of logical effort: each stage contributes
    ``(g·h + p)`` units of the technology's characteristic delay ``tau``
    (taken as the parasitic-free FO1 inverter delay at *vdd*), where ``g·h``
    is the stage effort and ``p`` its parasitic delay.
    """
    if not stage_efforts:
        raise ModelError("stage_efforts must not be empty")
    if parasitics and len(parasitics) != len(stage_efforts):
        raise ModelError("parasitics must match stage_efforts in length")
    inverter = GateModel(technology=technology, gate_type=GateType.INVERTER)
    tau = inverter.delay(vdd, external_load=inverter.input_capacitance)
    if not parasitics:
        parasitics = [1.0] * len(stage_efforts)
    units = sum(effort + par for effort, par in zip(stage_efforts, parasitics))
    return tau * units / 2.0


@dataclass(frozen=True)
class InverterChain:
    """A chain of identical inverters used as a delay line / time ruler.

    Parameters
    ----------
    technology:
        Process parameter set.
    stages:
        Number of inverters in the chain.
    fanout:
        Load seen by each stage, expressed in input capacitances of the next
        stage (the last stage sees the same load so the chain is uniform).
    drive_strength:
        Sizing of every inverter in the chain.
    """

    technology: Technology
    stages: int
    fanout: float = 1.0
    drive_strength: float = 1.0

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ModelError(f"stages must be >= 1, got {self.stages}")
        if self.fanout <= 0:
            raise ModelError("fanout must be positive")

    def _stage_gate(self) -> GateModel:
        return GateModel(
            technology=self.technology,
            gate_type=GateType.INVERTER,
            drive_strength=self.drive_strength,
        )

    def stage_delay(self, vdd: float) -> float:
        """Delay of a single stage in seconds at supply *vdd*."""
        gate = self._stage_gate()
        load = self.fanout * gate.input_capacitance
        return gate.delay(vdd, external_load=load)

    def total_delay(self, vdd: float) -> float:
        """End-to-end propagation delay of the whole chain in seconds."""
        return self.stages * self.stage_delay(vdd)

    def stage_arrival_times(self, vdd: float) -> List[float]:
        """Arrival time of the transition at the output of each stage.

        The reference-free voltage sensor (Fig. 12) samples this list with a
        "stop" event from the racing SRAM cell and converts the index reached
        into a thermometer code.
        """
        stage = self.stage_delay(vdd)
        return [stage * (i + 1) for i in range(self.stages)]

    def stages_reached(self, vdd: float, elapsed: float) -> int:
        """How many stages the transition has traversed after *elapsed* seconds."""
        if elapsed < 0:
            raise ModelError("elapsed time must be non-negative")
        stage = self.stage_delay(vdd)
        if stage <= 0:
            raise ModelError("non-physical stage delay")
        return min(self.stages, int(elapsed / stage))

    def energy(self, vdd: float) -> float:
        """Energy in joules of one transition propagating through the chain."""
        gate = self._stage_gate()
        load = self.fanout * gate.input_capacitance
        return self.stages * gate.transition_energy(vdd, external_load=load)

    def delay_in_inverters(self, vdd: float, other_delay: float) -> float:
        """Express an arbitrary *other_delay* in units of this chain's stage delay.

        This is exactly the y-axis of the paper's Fig. 5 ("delay of SRAM
        reading is equal to 50 inverters at 1 V, 158 inverters at 190 mV").
        """
        stage = self.stage_delay(vdd)
        if stage <= 0:
            raise ModelError("non-physical stage delay")
        return other_delay / stage
