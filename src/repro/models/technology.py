"""Technology parameter sets.

A :class:`Technology` bundles the handful of process parameters the
behavioural device models need: nominal supply, threshold voltage,
sub-threshold slope factor, per-gate capacitances and leakage.  The default
set, ``cmos90``, is tuned so that the derived quantities match the anchor
points quoted in the paper for UMC 90 nm:

* logic operates from 0.2 V to 1.0 V (dual-rail counter, sensors);
* an SRAM read costs ~50 inverter delays at 1.0 V and ~158 at 0.19 V (Fig. 5);
* a 16-bit SI SRAM write costs ~5.8 pJ at 1.0 V and ~1.9 pJ at 0.4 V with a
  minimum-energy point near 0.4 V.

The numbers are *behavioural calibrations*, not extracted SPICE parameters —
see DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ConfigurationError
from repro.units import ROOM_TEMPERATURE_K


@dataclass(frozen=True)
class Technology:
    """A named CMOS technology parameter set.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"cmos90"``.
    feature_size_nm:
        Drawn feature size in nanometres (informational).
    vdd_nominal:
        Nominal supply voltage in volts.
    vdd_min:
        Minimum supply at which logic is still considered functional.  Below
        this the behavioural models refuse to compute a finite delay.
    vth:
        Effective NMOS/PMOS threshold voltage magnitude in volts.
    subthreshold_slope_factor:
        The ``n`` in the sub-threshold current ``exp((Vgs-Vth)/(n*kT/q))``;
        typically 1.3–1.6 for bulk CMOS.
    alpha:
        Velocity-saturation exponent of the alpha-power law (≈1.3 for 90 nm).
    i_on_per_um:
        Saturation (on) current per micron of gate width at nominal Vdd, in
        amperes.  Sets the absolute delay scale.
    gate_cap_per_um:
        Gate capacitance per micron of width, in farads.
    wire_cap_per_um:
        Wire capacitance per micron of length, in farads (used for bitlines).
    i_leak_per_um:
        Per-micron sub-threshold leakage current at nominal Vdd, in amperes.
    min_width_um:
        Minimum transistor width in microns; the unit inverter uses this.
    temperature_k:
        Junction temperature for thermal-voltage dependent behaviour.
    """

    name: str
    feature_size_nm: float
    vdd_nominal: float
    vdd_min: float
    vth: float
    subthreshold_slope_factor: float
    alpha: float
    i_on_per_um: float
    gate_cap_per_um: float
    wire_cap_per_um: float
    i_leak_per_um: float
    min_width_um: float
    temperature_k: float = ROOM_TEMPERATURE_K
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.vdd_nominal <= 0:
            raise ConfigurationError("vdd_nominal must be positive")
        if not (0 < self.vdd_min < self.vdd_nominal):
            raise ConfigurationError(
                f"vdd_min must lie in (0, vdd_nominal), got {self.vdd_min}"
            )
        if self.vth <= 0 or self.vth >= self.vdd_nominal:
            raise ConfigurationError(
                f"vth must lie in (0, vdd_nominal), got {self.vth}"
            )
        if self.subthreshold_slope_factor < 1.0:
            raise ConfigurationError("subthreshold_slope_factor must be >= 1")
        if self.alpha < 1.0 or self.alpha > 2.0:
            raise ConfigurationError("alpha must lie in [1, 2]")
        for attr in ("i_on_per_um", "gate_cap_per_um", "wire_cap_per_um",
                     "i_leak_per_um", "min_width_um"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")

    # -- convenience -------------------------------------------------------

    @property
    def unit_inverter_input_cap(self) -> float:
        """Input capacitance of a minimum-size inverter (NMOS + PMOS ≈ 3×Wmin)."""
        return 3.0 * self.min_width_um * self.gate_cap_per_um

    @property
    def unit_inverter_output_cap(self) -> float:
        """Parasitic (self-load) output capacitance of a minimum-size inverter."""
        return 0.5 * self.unit_inverter_input_cap

    def scaled(self, **overrides: float) -> "Technology":
        """Return a copy with some parameters overridden (corner modelling)."""
        return replace(self, **overrides)


def _make_builtin_technologies() -> Dict[str, Technology]:
    """Construct the built-in technology table.

    The ``cmos90`` entry is the calibration target for all paper experiments;
    ``cmos65`` and ``cmos180`` bracket it so sweeps over technology are
    possible (the paper mentions both 65 nm [6] and 180 nm [4] prior work).
    """
    cmos90 = Technology(
        name="cmos90",
        feature_size_nm=90.0,
        vdd_nominal=1.0,
        vdd_min=0.14,
        vth=0.32,
        subthreshold_slope_factor=1.45,
        alpha=1.35,
        i_on_per_um=550e-6,
        gate_cap_per_um=1.0e-15,
        wire_cap_per_um=0.20e-15,
        i_leak_per_um=12e-9,
        min_width_um=0.12,
    )
    cmos65 = Technology(
        name="cmos65",
        feature_size_nm=65.0,
        vdd_nominal=1.0,
        vdd_min=0.13,
        vth=0.30,
        subthreshold_slope_factor=1.5,
        alpha=1.3,
        i_on_per_um=700e-6,
        gate_cap_per_um=0.8e-15,
        wire_cap_per_um=0.18e-15,
        i_leak_per_um=40e-9,
        min_width_um=0.09,
    )
    cmos180 = Technology(
        name="cmos180",
        feature_size_nm=180.0,
        vdd_nominal=1.8,
        vdd_min=0.20,
        vth=0.45,
        subthreshold_slope_factor=1.35,
        alpha=1.5,
        i_on_per_um=450e-6,
        gate_cap_per_um=1.8e-15,
        wire_cap_per_um=0.25e-15,
        i_leak_per_um=0.3e-9,
        min_width_um=0.24,
    )
    return {tech.name: tech for tech in (cmos90, cmos65, cmos180)}


#: Built-in technologies, keyed by name.
TECHNOLOGIES: Dict[str, Technology] = _make_builtin_technologies()


def get_technology(name: str = "cmos90") -> Technology:
    """Look up a built-in :class:`Technology` by name.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names so the
    error message lists the available options.
    """
    try:
        return TECHNOLOGIES[name]
    except KeyError as exc:
        known = ", ".join(sorted(TECHNOLOGIES))
        raise ConfigurationError(
            f"unknown technology {name!r}; available: {known}"
        ) from exc
