"""Process variation: corners and Monte-Carlo sampling.

The paper repeatedly stresses that self-timed logic tolerates "delay
variations due to low or unstable Vdd"; reference [8] performs corner and
failure analysis of the SI SRAM.  This module provides the corner and
Monte-Carlo machinery those analyses need: a :class:`Corner` shifts the
threshold voltage and drive strength of a :class:`~repro.models.technology.Technology`
deterministically, and :class:`ProcessVariation` samples per-instance
parameter sets with controlled randomness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.models.technology import Technology


class Corner(enum.Enum):
    """Classical process corners.

    The two letters refer to NMOS/PMOS strength; the behavioural model does
    not distinguish device polarity so ``FS`` and ``SF`` both map to typical
    drive with increased mismatch.
    """

    TYPICAL = "TT"
    FAST = "FF"
    SLOW = "SS"
    FAST_SLOW = "FS"
    SLOW_FAST = "SF"

    @property
    def vth_shift(self) -> float:
        """Threshold-voltage shift in volts applied by this corner."""
        return {
            Corner.TYPICAL: 0.0,
            Corner.FAST: -0.04,
            Corner.SLOW: +0.04,
            Corner.FAST_SLOW: 0.0,
            Corner.SLOW_FAST: 0.0,
        }[self]

    @property
    def drive_factor(self) -> float:
        """Multiplicative on-current factor applied by this corner."""
        return {
            Corner.TYPICAL: 1.0,
            Corner.FAST: 1.15,
            Corner.SLOW: 0.85,
            Corner.FAST_SLOW: 1.0,
            Corner.SLOW_FAST: 1.0,
        }[self]

    @property
    def mismatch_factor(self) -> float:
        """Extra local-mismatch multiplier (skewed corners are worse)."""
        return 1.5 if self in (Corner.FAST_SLOW, Corner.SLOW_FAST) else 1.0

    def apply(self, technology: Technology) -> Technology:
        """Return *technology* shifted to this corner."""
        return technology.scaled(
            vth=technology.vth + self.vth_shift,
            i_on_per_um=technology.i_on_per_um * self.drive_factor,
            i_leak_per_um=technology.i_leak_per_um
            * (2.0 if self is Corner.FAST else 0.5 if self is Corner.SLOW else 1.0),
        )


@dataclass
class VariationSample:
    """One Monte-Carlo draw of per-instance device parameters."""

    vth_offset: float
    drive_derating: float
    leakage_factor: float


class ProcessVariation:
    """Monte-Carlo sampler of local (within-die) device variation.

    Parameters
    ----------
    sigma_vth:
        Standard deviation of the threshold-voltage offset in volts
        (≈ 20–40 mV for minimum-size 90 nm devices).
    sigma_drive:
        Relative standard deviation of the drive current.
    sigma_leak:
        Log-normal sigma of the leakage multiplier.
    corner:
        Global corner applied on top of the local variation.
    seed:
        Seed for the internal :class:`numpy.random.Generator`; every sampler
        with the same seed produces the same sequence, keeping experiments
        reproducible.
    """

    def __init__(self, sigma_vth: float = 0.03, sigma_drive: float = 0.05,
                 sigma_leak: float = 0.3, corner: Corner = Corner.TYPICAL,
                 seed: Optional[int] = None) -> None:
        if sigma_vth < 0 or sigma_drive < 0 or sigma_leak < 0:
            raise ConfigurationError("variation sigmas must be non-negative")
        if sigma_drive >= 1.0:
            raise ConfigurationError("sigma_drive must be < 1 (relative sigma)")
        self.sigma_vth = sigma_vth
        self.sigma_drive = sigma_drive
        self.sigma_leak = sigma_leak
        self.corner = corner
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def sample(self) -> VariationSample:
        """Draw one per-instance variation sample."""
        mismatch = self.corner.mismatch_factor
        vth = float(self._rng.normal(self.corner.vth_shift,
                                     self.sigma_vth * mismatch))
        drive = float(self._rng.normal(self.corner.drive_factor,
                                       self.sigma_drive * mismatch))
        drive = max(0.2, drive)
        leak = float(self._rng.lognormal(mean=0.0, sigma=self.sigma_leak))
        return VariationSample(vth_offset=vth, drive_derating=drive,
                               leakage_factor=leak)

    def samples(self, count: int) -> Iterator[VariationSample]:
        """Yield *count* independent samples."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        for _ in range(count):
            yield self.sample()

    def apply_to(self, technology: Technology) -> Technology:
        """Return *technology* with one sampled variation folded in globally.

        Convenient for quick "what if the whole die is slow" studies; for
        per-gate mismatch pass :class:`VariationSample` fields to the gate
        models instead.
        """
        sample = self.sample()
        return technology.scaled(
            vth=technology.vth + sample.vth_offset,
            i_on_per_um=technology.i_on_per_um * sample.drive_derating,
            i_leak_per_um=technology.i_leak_per_um * sample.leakage_factor,
        )
