"""Vectorised (sample-batched) counterparts of the scalar device models.

The scalar models (:mod:`repro.models.mosfet`, :mod:`repro.models.gate`)
evaluate one device at one operating point per call — the right shape for
the event-driven simulator, and far too slow for Monte-Carlo studies that
evaluate the *same* closed-form expression at thousands of perturbed
parameter sets.  This module provides the batched view: a
:class:`TechnologyBatch` carries the per-sample arrays of the three
parameters process variation perturbs (``vth``, ``i_on_per_um``,
``i_leak_per_um``) next to the shared base :class:`~repro.models.technology.Technology`,
and the kernel functions below evaluate whole batches with numpy
elementwise arithmetic.

Numerical contract
------------------
Every kernel is strictly *elementwise*: the value computed for sample ``i``
depends only on sample ``i``'s inputs, never on the batch size or on the
sample's position (numpy's vectorised transcendentals are elementwise
deterministic).  Evaluating a one-sample batch therefore returns exactly
the same bits as evaluating that sample inside a larger batch — the
property the runner's batched-quantity protocol
(:func:`repro.analysis.runner.batched`) relies on for its serial/batched
bit-identity guarantee.  Against the *scalar* models the kernels agree to
within a few ULPs only (``numpy``'s ``exp``/``log1p``/``**`` and the C
library's disagree in the last bit), which is why batched quantities
derive their per-point path from the batch kernel rather than from the
scalar models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.models.gate import GateType
from repro.models.technology import Technology
from repro.units import thermal_voltage


def _as_array(values) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise ModelError(f"batch arrays must be 1-D, got shape {array.shape}")
    return array


@dataclass(frozen=True)
class TechnologyBatch:
    """A batch of technologies: one base plus per-sample perturbed arrays.

    Process variation (:class:`~repro.models.variation.ProcessVariation`)
    only ever perturbs the threshold voltage, the drive current and the
    leakage current; every other technology parameter is shared by all
    samples and read from :attr:`base`.
    """

    base: Technology
    vth: np.ndarray
    i_on_per_um: np.ndarray
    i_leak_per_um: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "vth", _as_array(self.vth))
        object.__setattr__(self, "i_on_per_um", _as_array(self.i_on_per_um))
        object.__setattr__(self, "i_leak_per_um",
                           _as_array(self.i_leak_per_um))
        if not (len(self.vth) == len(self.i_on_per_um)
                == len(self.i_leak_per_um)):
            raise ModelError("batch parameter arrays must share one length")

    @property
    def size(self) -> int:
        """Number of samples in the batch."""
        return len(self.vth)

    @classmethod
    def of(cls, technology: Technology) -> "TechnologyBatch":
        """A one-sample batch wrapping *technology* unchanged."""
        return cls(base=technology,
                   vth=np.array([technology.vth]),
                   i_on_per_um=np.array([technology.i_on_per_um]),
                   i_leak_per_um=np.array([technology.i_leak_per_um]))

    @classmethod
    def from_samples(cls, base: Technology, vth_offsets, drive_deratings,
                     leakage_factors) -> "TechnologyBatch":
        """Apply per-sample variation draws to *base*.

        The arithmetic mirrors
        :meth:`~repro.models.variation.ProcessVariation.apply_to` exactly
        (``vth + offset``, ``i_on × derating``, ``i_leak × factor``), so a
        batch built from pre-drawn sample arrays carries bit-identical
        parameters to the per-sample ``Technology`` objects the scalar
        path builds.
        """
        offsets = _as_array(vth_offsets)
        deratings = _as_array(drive_deratings)
        factors = _as_array(leakage_factors)
        return cls(base=base,
                   vth=base.vth + offsets,
                   i_on_per_um=base.i_on_per_um * deratings,
                   i_leak_per_um=base.i_leak_per_um * factors)


# ---------------------------------------------------------------------------
# MOSFET kernels (vectorised MosfetModel)


def softplus(x) -> np.ndarray:
    """Numerically stable ``ln(1 + exp(x))``, elementwise.

    Same three-branch split as :func:`repro.models.mosfet._softplus` so
    the batched current model has the scalar model's asymptotics.
    """
    x = np.asarray(x, dtype=float)
    clipped = np.clip(x, -700.0, 40.0)
    exp = np.exp(clipped)
    return np.where(x > 40.0, x, np.where(x < -40.0, exp, np.log1p(exp)))


def inversion_charge(batch: TechnologyBatch, vgs,
                     vth_offset=0.0) -> np.ndarray:
    """Dimensionless inversion-charge factor, elementwise over the batch.

    Vectorised :meth:`~repro.models.mosfet.MosfetModel._inversion_charge`;
    *vgs* and *vth_offset* may be scalars or arrays broadcasting against
    the batch.
    """
    tech = batch.base
    n_ut = tech.subthreshold_slope_factor * thermal_voltage(tech.temperature_k)
    x = (np.asarray(vgs, dtype=float) - (batch.vth + vth_offset)) / n_ut
    return softplus(x) ** tech.alpha


def on_current(batch: TechnologyBatch, vgs, width_um: float = 1.0,
               vth_offset=0.0, drive_derating: float = 1.0) -> np.ndarray:
    """Saturation drive current (A), elementwise over the batch.

    Vectorised :meth:`~repro.models.mosfet.MosfetModel.on_current`: the
    normalisation reference is evaluated per sample because the perturbed
    threshold moves it.
    """
    if np.any(np.asarray(vgs, dtype=float) < 0):
        raise ModelError("vgs must be non-negative")
    reference = inversion_charge(batch, batch.base.vdd_nominal)
    if np.any(reference <= 0):
        raise ModelError("technology parameters give zero reference current")
    scale = batch.i_on_per_um * width_um * drive_derating / reference
    return scale * inversion_charge(batch, vgs, vth_offset)


def leakage_current(batch: TechnologyBatch, vdd,
                    width_um: float = 1.0, vth_offset=0.0) -> np.ndarray:
    """Sub-threshold leakage (A), elementwise over the batch.

    Vectorised :meth:`~repro.models.mosfet.MosfetModel.leakage_current`.
    """
    vdd = np.asarray(vdd, dtype=float)
    if np.any(vdd < 0):
        raise ModelError("vdd must be non-negative")
    tech = batch.base
    n_ut = tech.subthreshold_slope_factor * thermal_voltage(tech.temperature_k)
    dibl = 0.08  # matches the scalar model's typical 90 nm value
    exponent = (dibl * (vdd - tech.vdd_nominal) - vth_offset) / n_ut
    current = batch.i_leak_per_um * width_um * np.exp(exponent)
    return np.where(vdd == 0.0, 0.0, current)


# ---------------------------------------------------------------------------
# Gate kernels (vectorised GateModel)


def gate_input_capacitance(technology: Technology, gate_type: GateType,
                           drive_strength: float = 1.0) -> float:
    """Input capacitance (F) of a gate — shared by all batch samples."""
    return (technology.unit_inverter_input_cap
            * gate_type.logical_effort * drive_strength)


def gate_parasitic_capacitance(technology: Technology, gate_type: GateType,
                               drive_strength: float = 1.0) -> float:
    """Intrinsic output capacitance (F) — shared by all batch samples."""
    return (technology.unit_inverter_output_cap
            * gate_type.parasitic * drive_strength)


def gate_delay(batch: TechnologyBatch, vdd,
               gate_type: GateType = GateType.INVERTER,
               drive_strength: float = 1.0, vth_offset=0.0,
               drive_derating: float = 1.0,
               external_load=None) -> np.ndarray:
    """Propagation delay (s), elementwise over the batch.

    Vectorised :meth:`~repro.models.gate.GateModel.delay`: same CV/I
    estimate, same below-``vdd_min`` rejection.  *vdd* and
    *external_load* may be arrays broadcasting against the batch (for
    sweep-axis batching over voltages).
    """
    tech = batch.base
    vdd = np.asarray(vdd, dtype=float)
    if np.any(vdd < tech.vdd_min):
        raise ModelError(
            f"vdd below functional minimum {tech.vdd_min:.3f} V "
            f"for {tech.name}")
    if external_load is None:
        external_load = gate_input_capacitance(tech, gate_type,
                                               drive_strength)
    load = (gate_parasitic_capacitance(tech, gate_type, drive_strength)
            + np.asarray(external_load, dtype=float))
    width = tech.min_width_um * 3.0 * drive_strength
    current = on_current(batch, vdd, width, vth_offset, drive_derating)
    if np.any(current <= 0) or not np.all(np.isfinite(current)):
        raise ModelError(f"non-physical drive current at vdd={vdd}")
    return load * vdd / (2.0 * current)


def gate_transition_energy(batch: TechnologyBatch, vdd,
                           gate_type: GateType = GateType.INVERTER,
                           drive_strength: float = 1.0,
                           activity_factor: float = 1.0,
                           external_load=None) -> np.ndarray:
    """Dynamic energy (J) per transition, elementwise over the batch.

    Vectorised switching + short-circuit sum of
    :meth:`~repro.models.gate.GateModel.transition_energy`; the crowbar
    term cuts off at the *per-sample* threshold voltage.
    """
    tech = batch.base
    vdd = np.asarray(vdd, dtype=float)
    if np.any(vdd < 0):
        raise ModelError("vdd must be non-negative")
    if external_load is None:
        external_load = gate_input_capacitance(tech, gate_type,
                                               drive_strength)
    load = (gate_parasitic_capacitance(tech, gate_type, drive_strength)
            + np.asarray(external_load, dtype=float))
    switching = 0.5 * load * vdd * vdd * activity_factor
    short_circuit = np.where(vdd > batch.vth, 0.10 * switching, 0.0)
    return switching + short_circuit


def inverter_stage_delay(batch: TechnologyBatch, vdd, fanout: float = 1.0,
                         drive_strength: float = 1.0) -> np.ndarray:
    """Delay (s) of one inverter-chain stage, elementwise over the batch.

    Vectorised :meth:`~repro.models.delay.InverterChain.stage_delay`.
    """
    load = fanout * gate_input_capacitance(batch.base, GateType.INVERTER,
                                           drive_strength)
    return gate_delay(batch, vdd, GateType.INVERTER, drive_strength,
                      external_load=load)


def fo4_delay(batch: TechnologyBatch, vdd) -> np.ndarray:
    """Fan-out-of-4 inverter delay (s), elementwise over the batch.

    Vectorised :func:`repro.models.delay.fo4_delay`.
    """
    cin = gate_input_capacitance(batch.base, GateType.INVERTER)
    return gate_delay(batch, vdd, GateType.INVERTER,
                      external_load=4.0 * cin)
