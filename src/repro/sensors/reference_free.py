"""Reference-free voltage sensor (paper Fig. 12, reference [10]).

"All we need is to have two circuits racing against each other and recording
the completion event of one circuit (say Circuit 1) in terms of a 'ruler'
provided by the other circuit (Circuit 2).  In our case, we used an SRAM
cell as Circuit 1 and a chain of inverters as the ruler."

The physics that makes the race informative is exactly the Fig. 5 mismatch:
the SRAM read path and the inverter chain scale *differently* with Vdd, so
the number of inverter stages traversed before the SRAM completes is itself
a monotonic function of the supply — with no time, voltage or current
reference anywhere.  The measurement comes out directly as a thermometer
code.

The paper's 90 nm implementation "can work under a wide range of Vdd, from
200 mV to 1 V ... with an accuracy of 10 mV"; the FIG12 benchmark checks the
behavioural model against both properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, SensorError
from repro.models.delay import InverterChain
from repro.models.technology import Technology
from repro.sensors.calibration import CalibrationTable, build_calibration
from repro.sram.bitline import BitlineModel, calibrate_bitline_to_fig5


@dataclass
class RaceResult:
    """Outcome of one race between the SRAM cell and the inverter chain."""

    vdd: float
    sram_delay: float
    ruler_stage_delay: float
    thermometer_code: int
    saturated: bool

    def thermometer_bits(self, stages: int) -> List[bool]:
        """The raw thermometer codeword (True for every stage that was passed)."""
        return [i < self.thermometer_code for i in range(stages)]


class ReferenceFreeVoltageSensor:
    """SRAM-versus-inverter-chain race sensor.

    Parameters
    ----------
    technology:
        Process parameters.
    ruler_stages:
        Length of the inverter chain.  Longer chains extend the measurable
        range upward (the SRAM gets *relatively* faster at high Vdd) and
        improve resolution.
    bitline:
        The SRAM-side delay model; defaults to the Fig. 5-calibrated bit line
        so the race uses exactly the published mismatch.
    ruler_fanout:
        Load of each ruler stage (heavier stages slow the ruler uniformly).
    race_length:
        Number of back-to-back SRAM read completions making up the raced
        "Circuit 1".  A single bit-line discharge is only ~50 inverter delays
        at 1 V, which limits the code resolution to tens of millivolts near
        nominal voltage; the published sensor races a longer SRAM structure
        so that one inverter stage corresponds to well under 10 mV.  The
        default of 16 (one per column of the paper's array) achieves the
        quoted 10 mV accuracy across 0.2–1 V.
    """

    def __init__(self, technology: Technology, ruler_stages: int = 4096,
                 bitline: Optional[BitlineModel] = None,
                 ruler_fanout: float = 1.0,
                 race_length: int = 16) -> None:
        if ruler_stages < 8:
            raise ConfigurationError("ruler_stages must be >= 8")
        if race_length < 1:
            raise ConfigurationError("race_length must be >= 1")
        self.technology = technology
        self.ruler_stages = ruler_stages
        self.race_length = race_length
        self.bitline = bitline or calibrate_bitline_to_fig5(technology)
        self.ruler = InverterChain(technology=technology, stages=ruler_stages,
                                   fanout=ruler_fanout)
        self.calibration: Optional[CalibrationTable] = None

    # ------------------------------------------------------------------
    # The race
    # ------------------------------------------------------------------

    def race(self, vdd: float) -> RaceResult:
        """Run one race at supply *vdd* and return the thermometer code."""
        if vdd < self.technology.vdd_min:
            raise SensorError(
                f"sensor not functional at vdd={vdd:.3f} V "
                f"(minimum {self.technology.vdd_min:.3f} V)"
            )
        sram_delay = self.race_length * self.bitline.read_delay(vdd)
        stage_delay = self.ruler.stage_delay(vdd)
        stages_passed = int(sram_delay / stage_delay)
        saturated = stages_passed >= self.ruler_stages
        code = min(stages_passed, self.ruler_stages)
        return RaceResult(
            vdd=vdd,
            sram_delay=sram_delay,
            ruler_stage_delay=stage_delay,
            thermometer_code=code,
            saturated=saturated,
        )

    def raw_code(self, vdd: float) -> int:
        """Thermometer code at supply *vdd* (convenience wrapper)."""
        return self.race(vdd).thermometer_code

    def operating_range(self, resolution: float = 0.01) -> tuple:
        """(low, high) supply range over which the code is usable.

        Usable means: the sensor is functional, the code is not saturated and
        adjacent voltages produce distinct codes somewhere in the range.
        """
        low = self.technology.vdd_min
        vdd = low
        high = low
        previous_code = None
        while vdd <= self.technology.vdd_nominal + 1e-9:
            result = self.race(vdd)
            if result.saturated:
                low = vdd + resolution
            else:
                if previous_code is not None and result.thermometer_code != previous_code:
                    high = vdd
                previous_code = result.thermometer_code
            vdd += resolution
        return (max(low, self.technology.vdd_min), max(high, low))

    # ------------------------------------------------------------------
    # Measurement interface
    # ------------------------------------------------------------------

    def calibrate(self, voltages: Sequence[float]) -> CalibrationTable:
        """Characterise the sensor and build its code→voltage table.

        The thermometer code *decreases* with rising Vdd (the SRAM catches up
        with the ruler), so the table is built on the negated code to keep it
        monotonically increasing.
        """
        self.calibration = build_calibration(
            lambda v: -float(self.raw_code(v)), voltages,
        )
        return self.calibration

    def measure(self, vdd: float) -> float:
        """Convert one race at the (unknown) supply *vdd* into a voltage."""
        if self.calibration is None:
            raise SensorError("sensor must be calibrated before measuring")
        return self.calibration.voltage_for_code(-float(self.raw_code(vdd)))

    def measurement_error(self, vdd: float) -> float:
        """Absolute measurement error (V) at the true supply *vdd*."""
        return abs(self.measure(vdd) - vdd)

    def worst_case_accuracy(self, voltages: Sequence[float]) -> float:
        """Largest measurement error (V) over *voltages* — the "10 mV" figure."""
        if not voltages:
            raise ConfigurationError("voltages must not be empty")
        return max(self.measurement_error(float(v)) for v in voltages)

    def energy_per_measurement(self, vdd: float) -> float:
        """Energy (J) of one race: one SRAM read plus one ruler traversal."""
        return self.bitline.read_energy(vdd) + self.ruler.energy(vdd)


#: Names of the scalars :func:`race_metrics` reports (the Fig. 12 plan's
#: quantity set).
RACE_METRICS = ("code", "measured", "error")


def race_metrics(sensor: ReferenceFreeVoltageSensor, vdd: float) -> dict:
    """One race of the SRAM against the ruler at the true voltage *vdd*.

    The per-point evaluation of the Fig. 12 plan: run the race, translate
    the thermometer code into a voltage through the sensor's calibration
    table, and report the absolute measurement error.  Requires a
    calibrated sensor (:meth:`ReferenceFreeVoltageSensor.calibrate`).
    """
    result = sensor.race(vdd)
    measured = sensor.measure(vdd)
    return {
        "code": float(result.thermometer_code),
        "measured": measured,
        "error": abs(measured - vdd),
    }
