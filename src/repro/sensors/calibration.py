"""Sensor calibration: monotonic code→voltage look-up tables.

Every sensing scheme in the paper ultimately produces a digital code whose
mapping to volts is monotonic but not exactly linear ("it can be calibrated
and stored in a look-up table for example").  :class:`CalibrationTable`
implements that table with linear interpolation and inverse lookup, plus the
resolution analysis used to verify the paper's "10 mV accuracy" claim for the
reference-free sensor.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.errors import CalibrationError


@dataclass
class CalibrationTable:
    """A monotonic (code, voltage) table with interpolated lookups."""

    points: List[Tuple[float, float]]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise CalibrationError("a calibration table needs at least two points")
        codes = [c for c, _ in self.points]
        volts = [v for _, v in self.points]
        if any(c2 <= c1 for c1, c2 in zip(codes, codes[1:])):
            raise CalibrationError("calibration codes must strictly increase")
        increasing = all(v2 >= v1 for v1, v2 in zip(volts, volts[1:]))
        decreasing = all(v2 <= v1 for v1, v2 in zip(volts, volts[1:]))
        if not (increasing or decreasing):
            raise CalibrationError("calibration voltages must be monotonic")
        self._codes = codes
        self._volts = volts

    # ------------------------------------------------------------------

    @property
    def code_range(self) -> Tuple[float, float]:
        """Smallest and largest calibrated code."""
        return self._codes[0], self._codes[-1]

    @property
    def voltage_range(self) -> Tuple[float, float]:
        """Smallest and largest calibrated voltage."""
        return min(self._volts), max(self._volts)

    def voltage_for_code(self, code: float) -> float:
        """Convert a raw sensor *code* into volts (linear interpolation).

        Codes outside the calibrated range are clamped to the end points —
        a real controller cannot extrapolate a measurement it never saw.
        """
        codes, volts = self._codes, self._volts
        if code <= codes[0]:
            return volts[0]
        if code >= codes[-1]:
            return volts[-1]
        idx = bisect_left(codes, code)
        c0, c1 = codes[idx - 1], codes[idx]
        v0, v1 = volts[idx - 1], volts[idx]
        fraction = (code - c0) / (c1 - c0)
        return v0 + fraction * (v1 - v0)

    def code_for_voltage(self, voltage: float) -> float:
        """Inverse lookup: the code the sensor would produce at *voltage*."""
        pairs = sorted(zip(self._volts, self._codes))
        volts = [v for v, _ in pairs]
        codes = [c for _, c in pairs]
        if voltage <= volts[0]:
            return codes[0]
        if voltage >= volts[-1]:
            return codes[-1]
        idx = bisect_left(volts, voltage)
        v0, v1 = volts[idx - 1], volts[idx]
        c0, c1 = codes[idx - 1], codes[idx]
        if v1 == v0:
            return c0
        fraction = (voltage - v0) / (v1 - v0)
        return c0 + fraction * (c1 - c0)

    # ------------------------------------------------------------------

    def resolution_at(self, voltage: float) -> float:
        """Voltage change (V) corresponding to one code step near *voltage*.

        This is the quantity the paper quotes as the sensor's accuracy
        ("accuracy of 10 mV"): if adjacent codes are Δcode apart and map to
        voltages ΔV apart, one code step resolves ΔV/Δcode volts.
        """
        pairs = sorted(zip(self._volts, self._codes))
        volts = [v for v, _ in pairs]
        codes = [c for _, c in pairs]
        if voltage <= volts[0]:
            idx = 1
        elif voltage >= volts[-1]:
            idx = len(volts) - 1
        else:
            idx = bisect_left(volts, voltage)
        dv = volts[idx] - volts[idx - 1]
        dc = codes[idx] - codes[idx - 1]
        if dc == 0:
            raise CalibrationError("zero code step in calibration table")
        return abs(dv / dc)

    def worst_resolution(self) -> float:
        """Largest (worst) single-code-step voltage over the whole range."""
        return max(self.resolution_at(0.5 * (v0 + v1))
                   for v0, v1 in zip(sorted(self._volts), sorted(self._volts)[1:])
                   if v1 != v0)

    def max_interpolation_error(self,
                                reference: Callable[[float], float]) -> float:
        """Worst-case |table(code) − reference(code)| between table points.

        Used in tests to verify that a table built with N points approximates
        the sensor's true transfer function well enough.
        """
        worst = 0.0
        for (c0, _), (c1, _) in zip(self.points, self.points[1:]):
            mid = 0.5 * (c0 + c1)
            worst = max(worst, abs(self.voltage_for_code(mid) - reference(mid)))
        return worst


def build_calibration(measure: Callable[[float], float],
                      voltages: Sequence[float]) -> CalibrationTable:
    """Characterise a sensor and build its calibration table.

    Parameters
    ----------
    measure:
        Callable ``voltage -> code`` running one conversion of the sensor at
        a known applied voltage (the characterisation bench).
    voltages:
        The known voltages to characterise at (ascending).

    Duplicate codes (sensor stuck / saturated at that voltage) are dropped so
    the resulting table remains strictly monotonic in code.
    """
    if len(voltages) < 2:
        raise CalibrationError("need at least two characterisation voltages")
    if any(v2 <= v1 for v1, v2 in zip(voltages, voltages[1:])):
        raise CalibrationError("characterisation voltages must strictly increase")
    points: List[Tuple[float, float]] = []
    for voltage in voltages:
        code = float(measure(voltage))
        if points and code <= points[-1][0]:
            continue
        points.append((code, float(voltage)))
    if len(points) < 2:
        raise CalibrationError(
            "sensor produced fewer than two distinct codes over the "
            "characterisation range"
        )
    return CalibrationTable(points=points)
