"""Charge-to-digital converter (paper Figs. 8, 9 and 11).

The converter *is* energy-modulated computing in miniature: "a circuit which
turns an amount of energy into the amount of computation".  A sampling
capacitor is charged from the node being measured (switch S1), then handed to
a self-timed counter running in oscillator mode (switch S2).  Every counter
transition removes a fixed quantum of charge; the logic slows as the
capacitor sags and finally stalls, and the frozen count is a monotonic
function of the sampled voltage — no voltage, current or time reference
anywhere.

Two evaluation paths are provided:

* :meth:`ChargeToDigitalConverter.convert` — full event-driven simulation of
  the counter draining the capacitor (the ground truth, used by tests and the
  Fig. 11 benchmark);
* :meth:`ChargeToDigitalConverter.predicted_count` — the closed-form estimate
  from charge conservation, used for quick sweeps and as an independent
  cross-check of the simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, SensorError
from repro.models.gate import GateModel, GateType
from repro.models.technology import Technology
from repro.power.capacitor import SamplingCapacitor
from repro.power.supply import SupplyNode
from repro.sensors.calibration import CalibrationTable, build_calibration
from repro.sim.probes import EnergyProbe
from repro.sim.simulator import Simulator
from repro.selftimed.counter import SelfTimedCounter


@dataclass
class ConversionResult:
    """Outcome of one charge-to-digital conversion."""

    sampled_voltage: float
    final_voltage: float
    count: int
    counter_value: int
    pulses: int
    conversion_time: float
    energy_consumed: float
    charge_consumed: float

    @property
    def charge_per_count(self) -> float:
        """Average charge drawn per counted pulse, in coulombs."""
        if self.pulses == 0:
            return float("nan")
        return self.charge_consumed / self.pulses


class ChargeToDigitalConverter:
    """Sampling capacitor + self-timed counter voltage sensor.

    Parameters
    ----------
    technology:
        Process parameters.
    sampling_capacitance:
        The sampling capacitor C_sample in farads.  Larger capacitors store
        more charge per volt and therefore produce larger (finer-grained)
        codes at the cost of longer conversions.
    counter_width:
        Number of toggle stages in the counter; the code saturates at
        ``2**width - 1`` pulses.
    sampling_time:
        How long switch S1 stays closed; with a constant sampling time the
        acquired charge is proportional to the measured voltage.
    switch_resistance:
        On-resistance of S1 in ohms.
    stop_voltage:
        Supply level at which the counter is considered stalled; defaults to
        the technology's functional minimum.
    """

    def __init__(self, technology: Technology,
                 sampling_capacitance: float = 30e-12,
                 counter_width: int = 16,
                 sampling_time: float = 1e-6,
                 switch_resistance: float = 1e3,
                 stop_voltage: Optional[float] = None) -> None:
        if sampling_capacitance <= 0:
            raise ConfigurationError("sampling_capacitance must be positive")
        if counter_width < 1:
            raise ConfigurationError("counter_width must be >= 1")
        if sampling_time <= 0:
            raise ConfigurationError("sampling_time must be positive")
        self.technology = technology
        self.sampling_capacitance = sampling_capacitance
        self.counter_width = counter_width
        self.sampling_time = sampling_time
        self.switch_resistance = switch_resistance
        self.stop_voltage = (technology.vdd_min if stop_voltage is None
                             else stop_voltage)
        if self.stop_voltage < technology.vdd_min:
            raise ConfigurationError(
                "stop_voltage cannot be below the technology's functional minimum"
            )
        self._toggle_model = GateModel(technology=technology,
                                       gate_type=GateType.TOGGLE)
        self._osc_model = GateModel(technology=technology,
                                    gate_type=GateType.INVERTER)
        self.calibration: Optional[CalibrationTable] = None

    # ------------------------------------------------------------------
    # Event-driven conversion (the real thing)
    # ------------------------------------------------------------------

    def convert(self, source: SupplyNode,
                energy_probe: Optional[EnergyProbe] = None,
                max_pulses: Optional[int] = None) -> ConversionResult:
        """Run one full conversion against *source*.

        The source is only touched during the sampling phase (S1); the
        conversion itself runs entirely off the sampling capacitor.
        """
        sim = Simulator()
        capacitor = SamplingCapacitor(
            capacitance=self.sampling_capacitance,
            switch_resistance=self.switch_resistance,
            min_operating_voltage=self.stop_voltage,
            name="ctd.csample",
        )
        sampled = capacitor.sample(source, self.sampling_time, time=0.0)
        counter = SelfTimedCounter(
            sim, capacitor, self.technology,
            name="ctd.counter",
            width=self.counter_width,
            max_pulses=max_pulses or (1 << self.counter_width) - 1,
            energy_probe=energy_probe,
        )
        if sampled >= self.technology.vdd_min:
            counter.start_oscillator()
            sim.run()
        return ConversionResult(
            sampled_voltage=sampled,
            final_voltage=capacitor.voltage(sim.now),
            count=counter.pulses_generated,
            counter_value=counter.value(),
            pulses=counter.pulses_generated,
            conversion_time=sim.now,
            energy_consumed=capacitor.energy_delivered,
            charge_consumed=capacitor.charge_delivered,
        )

    # ------------------------------------------------------------------
    # Closed-form prediction (charge conservation)
    # ------------------------------------------------------------------

    def charge_per_pulse(self, vdd: float) -> float:
        """Charge (C) one oscillator pulse plus its toggles draws at *vdd*.

        One pulse costs two oscillator edges plus, on average, two toggle
        events' worth of internal transitions spread over the chain
        (each stage toggles half as often as the previous one, summing to
        < 2 toggles per pulse).
        """
        osc = 2.0 * self._osc_model.transition_energy(vdd) / max(vdd, 1e-12)
        toggles = (2.0 * 3.0 * self._toggle_model.transition_energy(vdd)
                   / max(vdd, 1e-12))
        return osc + toggles

    def predicted_count(self, sampled_voltage: float) -> int:
        """Closed-form pulse-count estimate from charge conservation.

        Each pulse at capacitor voltage ``V`` removes ``q(V) ∝ V`` of charge,
        dropping the voltage by ``q(V)/C``; integrating from the sampled
        voltage down to the stop voltage gives a count that grows roughly
        logarithmically-linearly with the initial voltage.  The event-driven
        simulation is the reference; this estimate typically agrees within a
        few percent.
        """
        if sampled_voltage <= self.stop_voltage:
            return 0
        count = 0
        voltage = sampled_voltage
        cap = self.sampling_capacitance
        limit = (1 << self.counter_width) - 1
        while voltage > self.stop_voltage and count < limit:
            charge = self.charge_per_pulse(voltage)
            voltage -= charge / cap
            count += 1
        return count

    def conversion_gain(self, v_low: float = 0.3, v_high: float = 1.0) -> float:
        """Average counts per volt over the given input range."""
        if v_high <= v_low:
            raise ConfigurationError("v_high must exceed v_low")
        return ((self.predicted_count(v_high) - self.predicted_count(v_low))
                / (v_high - v_low))

    # ------------------------------------------------------------------
    # Measurement interface
    # ------------------------------------------------------------------

    def calibrate(self, voltages: Sequence[float],
                  use_simulation: bool = False) -> CalibrationTable:
        """Build the code→voltage table by characterisation.

        *use_simulation* selects the event-driven path (slow, exact) or the
        closed-form prediction (fast) for the characterisation runs.
        """
        if use_simulation:
            from repro.power.supply import ConstantSupply

            def measure(v: float) -> float:
                return float(self.convert(ConstantSupply(v)).count)
        else:
            def measure(v: float) -> float:
                return float(self.predicted_count(v))
        self.calibration = build_calibration(measure, voltages)
        return self.calibration

    def measure(self, source: SupplyNode,
                use_simulation: bool = True) -> float:
        """Measure the voltage of *source* in volts via the calibration table."""
        if self.calibration is None:
            raise SensorError("sensor must be calibrated before measuring")
        if use_simulation:
            code = self.convert(source).count
        else:
            code = self.predicted_count(source.voltage(0.0))
        return self.calibration.voltage_for_code(float(code))

    def energy_per_conversion(self, sampled_voltage: float) -> float:
        """Energy (J) one conversion takes from the *measured node*.

        Only the sampling charge is taken from the measured node; the
        conversion itself spends the capacitor's stored energy.  This is why
        the paper positions the converter as ultra-energy-frugal.
        """
        if sampled_voltage <= 0:
            return 0.0
        return 0.5 * self.sampling_capacitance * sampled_voltage * sampled_voltage


# ---------------------------------------------------------------------------
# Per-point quantities for declared experiment plans (Figs. 8, 9, 11)


#: Names of the scalars :func:`conversion_metrics` reports (the Fig. 9
#: plan's quantity set).
CONVERSION_METRICS = ("count", "charge_consumed", "charge_per_count",
                      "conversion_time", "final_voltage")


def conversion_metrics(converter: ChargeToDigitalConverter,
                       sampled_voltage: float) -> dict:
    """One event-driven conversion from a rail at *sampled_voltage*.

    The per-point evaluation of a Fig. 9/11 style plan: sample the voltage
    onto the converter's capacitor, run the self-timed counter until the
    charge collapses, and report the whole Fig. 9 row.  Deterministic for a
    given (technology, converter configuration, voltage), so pool workers
    and cache replays reproduce the counts exactly.
    """
    from repro.power.supply import ConstantSupply

    result = converter.convert(ConstantSupply(sampled_voltage))
    return {
        "count": float(result.count),
        "charge_consumed": result.charge_consumed,
        "charge_per_count": result.charge_per_count,
        "conversion_time": result.conversion_time,
        "final_voltage": result.final_voltage,
    }


@dataclass
class RailMeasurement:
    """One metering of a live rail by the charge-to-digital sensor (Fig. 8)."""

    code: int
    measured_voltage: float
    store_energy_taken: float


def meter_rail(sensor: ChargeToDigitalConverter, chain) -> RailMeasurement:
    """Measure *chain*'s regulated output rail with a calibrated sensor.

    The per-point evaluation of the Fig. 8 plan (one fresh power chain per
    regulated set-point): sample the DC-DC output onto the sensor's
    capacitor, convert, translate the code back to volts through the
    calibration table, and report how much energy the measurement took
    from the chain's store — the metering must be near-free for the
    closed loop to make sense.
    """
    if sensor.calibration is None:
        raise ConfigurationError(
            "meter_rail() needs a calibrated sensor; call calibrate() first")
    store_before = chain.store.stored_energy(0.0)
    result = sensor.convert(chain.output_rail)
    measured = sensor.calibration.voltage_for_code(float(result.count))
    store_after = chain.store.stored_energy(0.0)
    return RailMeasurement(code=result.count, measured_voltage=measured,
                           store_energy_taken=store_before - store_after)


def conversion_violations(technology: Technology, voltage: float,
                          sampling_capacitance: float = 20e-12,
                          counter_width: int = 10) -> List[str]:
    """Charge-conservation violations of one charge-to-digital conversion.

    The sensor layer's invariant adapter for
    :mod:`repro.analysis.campaign.invariants`: one
    :class:`ChargeToDigitalConverter` conversion against a constant
    *voltage* rail can only count pulses by *removing* charge from the
    sampling capacitor — the count stays inside the counter's range, the
    charge drawn never exceeds what ``C·V`` stored, the capacitor never
    ends above where it started, and counting takes time.

    Returns human-readable violation messages; empty means the model held.
    """
    from repro.power.supply import ConstantSupply

    if not voltage > 0.0:
        raise ConfigurationError(f"voltage must be positive, got {voltage!r}")
    converter = ChargeToDigitalConverter(
        technology, sampling_capacitance=sampling_capacitance,
        counter_width=counter_width)
    result = converter.convert(ConstantSupply(voltage))
    violations: List[str] = []
    ceiling = (1 << counter_width) - 1
    if not 0 <= result.count <= ceiling:
        violations.append(
            f"count {result.count!r} outside [0, {ceiling}] at "
            f"{voltage!r} V")
    budget = sampling_capacitance * result.sampled_voltage
    if result.charge_consumed > budget * (1.0 + 1e-9):
        violations.append(
            f"drew {result.charge_consumed!r} C from a capacitor holding "
            f"only {budget!r} C at {voltage!r} V")
    if result.charge_consumed < 0.0:
        violations.append(
            f"negative charge consumed ({result.charge_consumed!r} C)")
    if result.final_voltage > result.sampled_voltage * (1.0 + 1e-12):
        violations.append(
            f"capacitor voltage rose during conversion: sampled "
            f"{result.sampled_voltage!r} V, finished {result.final_voltage!r} V")
    if result.count > 0 and not result.conversion_time > 0.0:
        violations.append(
            f"counted {result.count} pulses in non-positive time "
            f"({result.conversion_time!r} s)")
    return violations
