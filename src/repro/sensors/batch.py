"""Vectorised charge-to-digital prediction over technology batches.

Mirrors the closed-form
:meth:`~repro.sensors.charge_to_digital.ChargeToDigitalConverter.predicted_count`
estimate — each pulse removes a voltage-dependent charge quantum from the
sampling capacitor until the counter stalls — but runs the drain loop in
*lockstep* across a whole batch: every iteration updates all still-active
samples with one numpy pass, and a sample freezes the moment it crosses
the stop voltage or saturates the counter.  The trajectory of each sample
is exactly the elementwise trajectory the one-sample batch would follow
(see the numerical contract in :mod:`repro.models.batch`), so batched and
per-point evaluation through the runner agree bit for bit.

The loop supports both batching directions the figures need: a batch of
perturbed technologies at one sampled voltage (Monte-Carlo, Fig. 9/11
style) and one technology over an array of sampled voltages (the Fig. 8
rail sweep).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.models.batch import (TechnologyBatch, gate_input_capacitance,
                                gate_parasitic_capacitance)
from repro.models.gate import GateType
from repro.models.technology import Technology


def charge_per_pulse(batch: TechnologyBatch, vdd) -> np.ndarray:
    """Charge (C) one oscillator pulse plus its toggles draws at *vdd*.

    Vectorised
    :meth:`~repro.sensors.charge_to_digital.ChargeToDigitalConverter.charge_per_pulse`:
    two oscillator (inverter) edges plus two toggle events' worth of
    internal transitions, each transition costing switching energy plus
    the above-threshold crowbar surcharge at the *per-sample* threshold.
    """
    tech = batch.base
    vdd = np.asarray(vdd, dtype=float)
    safe_vdd = np.maximum(vdd, 1e-12)
    total = np.zeros(np.broadcast(vdd, batch.vth).shape)
    for gate_type, events in ((GateType.INVERTER, 2.0), (GateType.TOGGLE,
                                                         2.0 * 3.0)):
        load = (gate_parasitic_capacitance(tech, gate_type)
                + gate_input_capacitance(tech, gate_type))
        switching = 0.5 * load * vdd * vdd
        energy = switching + np.where(vdd > batch.vth, 0.10 * switching, 0.0)
        total = total + events * energy / safe_vdd
    return total


def predicted_counts(technology: Union[Technology, TechnologyBatch],
                     sampled_voltage,
                     sampling_capacitance: float = 30e-12,
                     counter_width: int = 16,
                     stop_voltage: Optional[float] = None) -> np.ndarray:
    """Closed-form pulse counts, elementwise over samples and/or voltages.

    Vectorised
    :meth:`~repro.sensors.charge_to_digital.ChargeToDigitalConverter.predicted_count`;
    *technology* may be a single :class:`~repro.models.technology.Technology`
    or a :class:`~repro.models.batch.TechnologyBatch`, and
    *sampled_voltage* a scalar or an array broadcasting against the batch.
    Returns the counts as floats (plan quantities are float-valued).
    """
    if sampling_capacitance <= 0:
        raise ConfigurationError("sampling_capacitance must be positive")
    if counter_width < 1:
        raise ConfigurationError("counter_width must be >= 1")
    batch = (technology if isinstance(technology, TechnologyBatch)
             else TechnologyBatch.of(technology))
    if stop_voltage is None:
        stop_voltage = batch.base.vdd_min
    if stop_voltage < batch.base.vdd_min:
        raise ConfigurationError(
            "stop_voltage cannot be below the technology's functional minimum"
        )
    shape = np.broadcast(np.asarray(sampled_voltage, dtype=float),
                         batch.vth).shape
    voltage = np.broadcast_to(np.asarray(sampled_voltage, dtype=float),
                              shape).astype(float).copy()
    count = np.zeros(shape, dtype=np.int64)
    limit = (1 << counter_width) - 1
    active = voltage > stop_voltage
    while np.any(active):
        charge = charge_per_pulse(batch, voltage)
        voltage = np.where(active, voltage - charge / sampling_capacitance,
                           voltage)
        count = np.where(active, count + 1, count)
        active = (voltage > stop_voltage) & (count < limit)
    return count.astype(float)
