"""On-chip voltage sensing (paper Sections III-B and III-C).

"Our holistic approach ... requires timely and accurate metering of
resources.  An important resource is power supply, and we should find
efficient ways of metering power on a chip, preferably avoiding complex
A-to-D converter schemes."  The package provides the three sensing styles
the paper discusses:

* :class:`~repro.sensors.ring_oscillator.RingOscillatorSensor` — the
  published baseline [6]: a ring oscillator whose frequency is proportional
  to Vdd, read against a time reference and linearised via a look-up table;
* :class:`~repro.sensors.charge_to_digital.ChargeToDigitalConverter` — the
  paper's self-timed counter fed from a sampling capacitor (Figs. 8–11): a
  quantum of charge is converted into an amount of computation whose count
  *is* the measurement; no time reference is needed, only the sampling
  switch;
* :class:`~repro.sensors.reference_free.ReferenceFreeVoltageSensor` — the
  fully reference-free race sensor of Fig. 12: an SRAM cell and an inverter
  chain race each other from the same rail, and the thermometer code frozen
  at the SRAM's completion event encodes the voltage (0.2–1 V range, ~10 mV
  accuracy in the paper's 90 nm implementation).

:mod:`repro.sensors.calibration` provides the look-up-table machinery all
three use to convert raw codes into volts.
"""

from repro.sensors.calibration import CalibrationTable, build_calibration
from repro.sensors.ring_oscillator import RingOscillatorSensor
from repro.sensors.charge_to_digital import ChargeToDigitalConverter, ConversionResult
from repro.sensors.reference_free import ReferenceFreeVoltageSensor, RaceResult

__all__ = [
    "CalibrationTable",
    "build_calibration",
    "RingOscillatorSensor",
    "ChargeToDigitalConverter",
    "ConversionResult",
    "ReferenceFreeVoltageSensor",
    "RaceResult",
]
