"""The consolidated command line: ``python -m repro`` (or just ``repro``).

One front door over the four module CLIs that grew with the execution
stack::

    python -m repro run --plan MODULE:FACTORY [...]   # execute a plan
    python -m repro cache [...]                       # = repro.analysis.cache
    python -m repro distrib [...]                     # = repro.analysis.distrib
    python -m repro serve [--host H] [--port P]       # = objstore --serve
    python -m repro selftest [--backend {fs,obj}] [--only LIST]
    python -m repro campaign {run,list,fuzz,repro}    # = analysis.campaign

``run`` resolves execution policy through the
:class:`~repro.analysis.session.RunConfig` chain (flags > ``REPRO_*``
environment variables > ``repro.toml`` > defaults) and executes through a
:class:`~repro.analysis.session.Session`, so the command line, the
benchmark harness and library callers all share one wiring path.

``cache`` and ``distrib`` forward their arguments verbatim to the module
mains, and ``serve``/``selftest`` call the same functions the module
entry points do — the legacy ``python -m repro.analysis.{runner,cache,
distrib,objstore}`` invocations therefore keep working unchanged, as thin
aliases of this CLI.  ``pip install -e .`` additionally installs the
``repro`` console script pointing here.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence

__all__ = ["main"]

#: selftest suites in execution order (fast first).  ``objstore`` is the
#: protocol check of the object-store backend; with ``--backend fs`` it
#: is skipped unless explicitly requested through ``--only``.
SELFTEST_SUITES = ("session", "runner", "objstore", "cache", "distrib")


def _forward_cache(rest: Sequence[str]) -> int:
    from repro.analysis.cache import main as cache_main

    return cache_main(list(rest))


def _forward_distrib(rest: Sequence[str]) -> int:
    from repro.analysis.distrib import main as distrib_main

    return distrib_main(list(rest))


def _forward_campaign(rest: Sequence[str]) -> int:
    from repro.analysis.campaign.cli import main as campaign_main

    return campaign_main(list(rest))


_FORWARDED = {"cache": _forward_cache, "distrib": _forward_distrib,
              "campaign": _forward_campaign}


def _cmd_run(args) -> int:
    from repro.analysis.distrib import _load_plan_factory
    from repro.analysis.session import RunConfig, Session

    plan, quantities = _load_plan_factory(args.plan)
    config = RunConfig.resolve(
        config_file=args.config,
        workers=args.workers,
        cache_mode=args.cache_mode,
        cache_root=args.cache_root,
        distrib_root=args.distrib_root,
        shard_size=args.shard_size,
    )
    with Session(config) as session:
        result = session.run(plan, quantities)
    record = result.provenance
    if args.json:
        print(json.dumps({
            "config": config.describe(),
            "values": result.values,
            "provenance": record.as_dict(),
        }, indent=2, sort_keys=True))
        return 0
    print(f"ran {record.points} point(s) of "
          f"{', '.join(record.quantities)} [{record.kind}] on the "
          f"'{record.executor}' executor in "
          f"{record.wall_time_s * 1e3:.1f} ms")
    for name, source in sorted(config.sources.items()):
        if source != "default":
            print(f"  config {name} = "
                  f"{getattr(config, name)!r}  ({source})")
    for name in record.quantities:
        coords, value = result.argmin(name)
        where = ", ".join(f"{axis}={c:g}" for axis, c
                          in zip(record.axes, coords))
        print(f"  {name}: min {value:.6g} at {where}")
    return 0


def _cmd_serve(args) -> int:
    from repro.analysis.objstore import main as objstore_main

    forwarded: List[str] = ["--serve"]
    if args.host is not None:
        forwarded += ["--host", args.host]
    if args.port is not None:
        forwarded += ["--port", str(args.port)]
    return objstore_main(forwarded)


def _cmd_selftest(args) -> int:
    if args.only:
        requested = [name.strip() for name in args.only.split(",")
                     if name.strip()]
        unknown = sorted(set(requested) - set(SELFTEST_SUITES))
        if unknown:
            print(f"unknown selftest suite(s): {', '.join(unknown)}; "
                  f"choose from {', '.join(SELFTEST_SUITES)}")
            return 2
        suites = [name for name in SELFTEST_SUITES if name in requested]
    else:
        suites = [name for name in SELFTEST_SUITES
                  if name != "objstore" or args.backend == "obj"]
    failures = 0
    for suite in suites:
        print(f"=== {suite} ===", flush=True)
        if suite == "session":
            from repro.analysis.session import main as session_main

            failures += session_main(["--selftest"])
        elif suite == "runner":
            from repro.analysis.runner import main as runner_main

            failures += runner_main(["--selftest"])
        elif suite == "objstore":
            from repro.analysis.objstore import main as objstore_main

            failures += objstore_main(["--selftest"])
        elif suite == "cache":
            failures += _forward_cache(["--selftest", "--backend",
                                        args.backend])
        elif suite == "distrib":
            failures += _forward_distrib(["--selftest", "--backend",
                                          args.backend])
    print("selftest matrix:", "PASS" if failures == 0
          else f"{failures} suite failure(s)")
    return 0 if failures == 0 else 1


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, cache, distribute and smoke-test the paper's "
                    "experiment plans through one entry point.",
        epilog="Execution policy for 'run' resolves as: flags > REPRO_* "
               "environment variables > repro.toml ([run] table) > "
               "defaults.")
    commands = parser.add_subparsers(dest="command")

    run_cmd = commands.add_parser(
        "run", help="execute a plan through a Session",
        description="Execute MODULE:FACTORY — a callable returning "
                    "(plan, quantities) — through a Session wired from "
                    "the resolved RunConfig.")
    run_cmd.add_argument("--plan", required=True,
                         help="MODULE:CALLABLE returning (plan, quantities)"
                              " — e.g. repro.analysis.distrib:selftest_plan")
    run_cmd.add_argument("--workers", default=None, metavar="N|auto",
                         help="pool size (auto = cpu count; default: "
                              "resolved)")
    run_cmd.add_argument("--cache-mode", default=None,
                         choices=("off", "rw", "ro"),
                         help="persistent-cache mode (default: resolved)")
    run_cmd.add_argument("--cache-root", default=None, metavar="SPEC",
                         help="cache root: a directory, a bucket URL, or "
                              "fs / obj:URL (default: resolved)")
    run_cmd.add_argument("--distrib-root", default=None, metavar="ROOT",
                         help="shared fleet root — directory or bucket URL "
                              "(default: resolved; none = local execution)")
    run_cmd.add_argument("--shard-size", default=None, metavar="N",
                         help="points per distrib shard (default: resolved)")
    run_cmd.add_argument("--config", default=None, metavar="FILE",
                         help="repro.toml to resolve from (default: "
                              "$REPRO_CONFIG or ./repro.toml)")
    run_cmd.add_argument("--json", action="store_true",
                         help="emit config, values and provenance as JSON")

    # Registered for --help only; dispatch short-circuits before argparse
    # so every flag (e.g. cache's --stats) reaches the module main intact.
    commands.add_parser(
        "cache", add_help=False,
        help="persistent-cache maintenance "
             "(alias of python -m repro.analysis.cache)")
    commands.add_parser(
        "distrib", add_help=False,
        help="fleet worker/submit/status/run "
             "(alias of python -m repro.analysis.distrib)")
    commands.add_parser(
        "campaign", add_help=False,
        help="scenario campaigns and the invariant fuzzer "
             "(alias of python -m repro.analysis.campaign)")

    serve_cmd = commands.add_parser(
        "serve", help="run the S3-style object-store server "
                      "(alias of python -m repro.analysis.objstore --serve)")
    serve_cmd.add_argument("--host", default=None,
                           help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=None,
                           help="bind port (default: 9199)")

    selftest_cmd = commands.add_parser(
        "selftest", help="run the module selftests "
                         "(session, runner, cache, distrib[, objstore])")
    selftest_cmd.add_argument("--backend", choices=("fs", "obj"),
                              default="fs",
                              help="storage backend for the cache/distrib "
                                   "suites; obj adds the objstore protocol "
                                   "suite (default: fs)")
    selftest_cmd.add_argument("--only", default=None, metavar="LIST",
                              help="comma-separated subset of: "
                                   + ", ".join(SELFTEST_SUITES))
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch one consolidated-CLI invocation; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Forwarded subcommands bypass argparse entirely: their flags belong
    # to the module mains, and argparse's REMAINDER handling would eat
    # leading options.
    if argv and argv[0] in _FORWARDED:
        return _FORWARDED[argv[0]](argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    from repro.errors import ConfigurationError

    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "selftest":
            return _cmd_selftest(args)
    except ConfigurationError as exc:
        # Misconfiguration is a user error: one clear line, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
