"""The consolidated command line: ``python -m repro`` (or just ``repro``).

One front door over the four module CLIs that grew with the execution
stack::

    python -m repro run --plan MODULE:FACTORY [...]   # execute a plan
    python -m repro cache [...]                       # = repro.analysis.cache
    python -m repro distrib [...]                     # = repro.analysis.distrib
    python -m repro serve start [...]                 # experiment service
    python -m repro serve {submit,status,wait} [...]  # its tenant client
    python -m repro serve objstore [...]              # = objstore --serve
    python -m repro selftest [--backend {fs,obj}] [--only LIST]
    python -m repro campaign {run,list,fuzz,repro}    # = analysis.campaign
    python -m repro obs {append,check,dashboard}      # = analysis.obs
    python -m repro check [PATHS] [--json] [--rule ID] # invariant linter

``run`` resolves execution policy through the
:class:`~repro.analysis.session.RunConfig` chain (flags > ``REPRO_*``
environment variables > ``repro.toml`` > defaults) and executes through a
:class:`~repro.analysis.session.Session`, so the command line, the
benchmark harness and library callers all share one wiring path.

``serve`` fronts the multi-tenant experiment service
(:mod:`repro.analysis.serve`): ``start`` runs it in the foreground,
``submit``/``status``/``wait`` are its tenant client, and ``objstore``
keeps the S3-style object-store server under the same roof.  A bare
``serve [--host H] [--port P]`` — the spelling from before the
experiment service took the name — still starts the object store, as a
deprecated alias with a one-line warning.

``cache`` and ``distrib`` forward their arguments verbatim to the module
mains, and ``serve``/``selftest`` call the same functions the module
entry points do — the legacy ``python -m repro.analysis.{runner,cache,
distrib,objstore}`` invocations therefore keep working unchanged, as thin
aliases of this CLI.  ``pip install -e .`` additionally installs the
``repro`` console script pointing here.
"""

from __future__ import annotations

import json
import sys
from typing import Optional, Sequence

__all__ = ["main"]

#: selftest suites in execution order (fast first).  ``objstore`` is the
#: protocol check of the object-store backend; with ``--backend fs`` it
#: is skipped unless explicitly requested through ``--only``.
SELFTEST_SUITES = ("lint", "session", "obs", "runner", "objstore", "cache",
                   "distrib", "serve")


def _forward_cache(rest: Sequence[str]) -> int:
    from repro.analysis.cache import main as cache_main

    return cache_main(list(rest))


def _forward_distrib(rest: Sequence[str]) -> int:
    from repro.analysis.distrib import main as distrib_main

    return distrib_main(list(rest))


def _forward_campaign(rest: Sequence[str]) -> int:
    from repro.analysis.campaign.cli import main as campaign_main

    return campaign_main(list(rest))


def _forward_obs(rest: Sequence[str]) -> int:
    from repro.analysis.obs import main as obs_main

    return obs_main(list(rest))


def _forward_check(rest: Sequence[str]) -> int:
    from repro.analysis.lint import main as lint_main

    return lint_main(list(rest))


_FORWARDED = {"cache": _forward_cache, "distrib": _forward_distrib,
              "campaign": _forward_campaign, "obs": _forward_obs,
              "check": _forward_check}


def _cmd_run(args) -> int:
    from repro.analysis.distrib import _load_plan_factory
    from repro.analysis.session import RunConfig, Session

    plan, quantities = _load_plan_factory(args.plan)
    config = RunConfig.resolve(
        config_file=args.config,
        workers=args.workers,
        cache_mode=args.cache_mode,
        cache_root=args.cache_root,
        distrib_root=args.distrib_root,
        shard_size=args.shard_size,
    )
    with Session(config) as session:
        result = session.run(plan, quantities)
    record = result.provenance
    if args.json:
        print(json.dumps({
            "config": config.describe(),
            "values": result.values,
            "provenance": record.as_dict(),
        }, indent=2, sort_keys=True))
        return 0
    print(f"ran {record.points} point(s) of "
          f"{', '.join(record.quantities)} [{record.kind}] on the "
          f"'{record.executor}' executor in "
          f"{record.wall_time_s * 1e3:.1f} ms")
    for name, source in sorted(config.sources.items()):
        if source != "default":
            print(f"  config {name} = "
                  f"{getattr(config, name)!r}  ({source})")
    for name in record.quantities:
        coords, value = result.argmin(name)
        where = ", ".join(f"{axis}={c:g}" for axis, c
                          in zip(record.axes, coords))
        print(f"  {name}: min {value:.6g} at {where}")
    return 0


def _cmd_serve(rest: Sequence[str]) -> int:
    """Dispatch ``serve`` — the experiment service and its clients.

    Does its own parsing (like the forwarded subcommands) so the legacy
    spelling ``serve [--host H] [--port P]`` can stay alive: anything
    that is not a known subcommand or ``--selftest`` is the pre-service
    object-store invocation, forwarded with a deprecation warning.
    """
    rest = list(rest)
    if rest and rest[0] == "objstore":
        from repro.analysis.objstore import main as objstore_main

        return objstore_main(["--serve"] + rest[1:])
    if rest and rest[0] == "--selftest":
        from repro.analysis.serve import main as serve_main

        return serve_main(rest)
    if rest and rest[0] in ("--help", "-h"):
        _build_serve_parser().print_help()
        return 0
    if not rest or rest[0] not in _SERVE_SUBCOMMANDS:
        print("warning: bare 'repro serve' is deprecated; the name now "
              "fronts the experiment service — use 'serve objstore' for "
              "the object store or 'serve start' for the service",
              file=sys.stderr)
        from repro.analysis.objstore import main as objstore_main

        return objstore_main(["--serve"] + rest)
    args = _build_serve_parser().parse_args(rest)
    return {"start": _serve_start, "submit": _serve_submit,
            "status": _serve_status, "wait": _serve_wait}[args.subcommand](args)


_SERVE_SUBCOMMANDS = ("start", "submit", "status", "wait", "objstore")


def _build_serve_parser():
    import argparse

    from repro.analysis.serve.http import DEFAULT_PORT
    from repro.analysis.serve.service import DEFAULT_DISPATCHERS

    default_url = f"http://127.0.0.1:{DEFAULT_PORT}"
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="The multi-tenant experiment service: start it, or "
                    "talk to a running one as a tenant.")
    sub = parser.add_subparsers(dest="subcommand")

    start_cmd = sub.add_parser(
        "start", help="run the experiment service in the foreground")
    start_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
    start_cmd.add_argument("--port", type=int, default=DEFAULT_PORT,
                           help=f"bind port (default: {DEFAULT_PORT}; "
                                "0 picks a free one)")
    start_cmd.add_argument("--scheduler", choices=("vtc", "fifo"),
                           default="vtc",
                           help="fair-share (vtc) or arrival-order (fifo) "
                                "dispatch (default: vtc)")
    start_cmd.add_argument("--dispatchers", type=int,
                           default=DEFAULT_DISPATCHERS, metavar="N",
                           help="dispatcher threads draining the queue "
                                f"(default: {DEFAULT_DISPATCHERS})")
    start_cmd.add_argument("--max-queue-depth", type=int, default=64,
                           metavar="N",
                           help="admission watermark: queued plans "
                                "(default: 64)")
    start_cmd.add_argument("--max-queued-cost", type=float,
                           default=100_000.0, metavar="C",
                           help="admission watermark: queued quantity "
                                "evaluations; 0 disables (default: 100000)")
    start_cmd.add_argument("--config", default=None, metavar="FILE",
                           help="repro.toml the owned Session resolves "
                                "from (default: $REPRO_CONFIG or "
                                "./repro.toml)")
    start_cmd.add_argument("--history", default="BENCH_history.jsonl",
                           metavar="FILE",
                           help="bench trajectory the /v1/dashboard "
                                "sparklines plot (default: "
                                "BENCH_history.jsonl; missing file just "
                                "darkens that section)")

    submit_cmd = sub.add_parser(
        "submit", help="submit a plan or campaign to a running service")
    submit_cmd.add_argument("--url", default=default_url,
                            help=f"service URL (default: {default_url})")
    submit_cmd.add_argument("--plan", default=None, metavar="SPEC",
                            help="MODULE:FACTORY returning "
                                 "(plan, quantities) — same spec as "
                                 "'repro run --plan'")
    submit_cmd.add_argument("--campaign", default=None, metavar="NAME",
                            help="bundled campaign name or TOML path; "
                                 "expands to one plan per run")
    submit_cmd.add_argument("--smoke", action="store_true",
                            help="submit the campaign's smoke-trimmed form")
    submit_cmd.add_argument("--runs", default=None, metavar="LIST",
                            help="comma-separated campaign run labels "
                                 "(default: all)")
    submit_cmd.add_argument("--tenant", default=None,
                            help="tenant the fair share charges "
                                 "(default: anonymous)")
    submit_cmd.add_argument("--wait", action="store_true",
                            help="block until every submitted plan is "
                                 "terminal")
    submit_cmd.add_argument("--json", action="store_true",
                            help="emit the plan records as JSON")

    status_cmd = sub.add_parser(
        "status", help="queue, tenants and admission state of a service")
    status_cmd.add_argument("--url", default=default_url,
                            help=f"service URL (default: {default_url})")
    status_cmd.add_argument("--json", action="store_true",
                            help="emit the raw /v1/status payload")

    wait_cmd = sub.add_parser(
        "wait", help="long-poll plans until they reach a terminal state")
    wait_cmd.add_argument("plan_ids", nargs="+", metavar="PLAN_ID")
    wait_cmd.add_argument("--url", default=default_url,
                          help=f"service URL (default: {default_url})")
    wait_cmd.add_argument("--timeout", type=float, default=None,
                          metavar="S", help="give up after S seconds "
                                            "(default: wait forever)")
    wait_cmd.add_argument("--json", action="store_true",
                          help="emit the terminal records as JSON")
    return parser


def _serve_start(args) -> int:
    from repro.analysis.serve import ExperimentServer, ExperimentService
    from repro.analysis.session import RunConfig

    config = RunConfig.resolve(config_file=args.config)
    service = ExperimentService(
        config, scheduler=args.scheduler, dispatchers=args.dispatchers,
        max_queue_depth=args.max_queue_depth,
        max_queued_cost=(None if args.max_queued_cost <= 0
                         else args.max_queued_cost))
    server = ExperimentServer(service, host=args.host, port=args.port,
                              history_path=args.history)
    print(f"experiment service on {server.url} "
          f"(scheduler={args.scheduler}, dispatchers={args.dispatchers}, "
          f"max-queue-depth={args.max_queue_depth}; live dashboard at "
          f"{server.url}/v1/dashboard)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (in-flight plans complete)")
    finally:
        server.stop()
        service.close()
    return 0


def _serve_records(records, as_json: bool) -> int:
    """Print plan records (the submit/wait output); 1 if any failed."""
    if as_json:
        print(json.dumps({"plans": records}, indent=2, sort_keys=True))
    else:
        for record in records:
            line = (f"{record['id']}  {record['state']:<7}  "
                    f"tenant={record['tenant']}  "
                    f"{record['points']} point(s) [{record['kind']}]")
            if record["label"]:
                line += f"  run={record['label']}"
            if record["error"]:
                line += f"  error: {record['error']}"
            print(line)
    return 0 if all(record["state"] != "failed"
                    for record in records) else 1


def _serve_submit(args) -> int:
    from repro.analysis.serve.client import ServiceClient, ServiceOverloaded
    from repro.errors import ConfigurationError

    if (args.plan is None) == (args.campaign is None):
        raise ConfigurationError(
            "submit needs exactly one of --plan or --campaign")
    client = ServiceClient(args.url)
    try:
        if args.plan is not None:
            records = [client.submit_plan(args.plan, tenant=args.tenant)]
        else:
            runs = ([label.strip() for label in args.runs.split(",")
                     if label.strip()] if args.runs else None)
            records = client.submit_campaign(args.campaign,
                                             tenant=args.tenant,
                                             smoke=args.smoke, runs=runs)
    except ServiceOverloaded as exc:
        print(f"error: {exc} — retry in {exc.retry_after_s:.1f}s",
              file=sys.stderr)
        return 3
    if args.wait:
        records = [client.wait(str(record["id"])) for record in records]
    return _serve_records(records, args.json)


def _serve_status(args) -> int:
    from repro.analysis.serve.client import ServiceClient

    payload = ServiceClient(args.url).status()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    scheduler = payload["scheduler"]
    plans = payload["plans"]
    admission = payload["admission"]
    print(f"experiment service at {args.url}: "
          f"up {payload['uptime_s']:.0f}s, "
          f"{payload['dispatchers']} dispatcher(s), "
          f"scheduler={scheduler['scheduler']}")
    print(f"  plans: {plans['queued']} queued, {plans['running']} running, "
          f"{plans['done']} done, {plans['failed']} failed")
    print(f"  admission: {admission['admitted']} admitted, "
          f"{admission['rejected']} rejected "
          f"(watermarks: depth {admission['max_depth']}, "
          f"cost {admission['max_cost']})")
    virtual = scheduler.get("virtual_time", {})
    for tenant, entry in sorted(payload["tenants"].items()):
        line = (f"  tenant {tenant}: {entry['submitted']} submitted, "
                f"{entry['completed']} completed, {entry['failed']} failed")
        if tenant in virtual:
            line += f", virtual time {virtual[tenant]:g}"
        print(line)
    return 0


def _serve_wait(args) -> int:
    from repro.analysis.serve.client import ServiceClient

    client = ServiceClient(args.url)
    records = [client.wait(plan_id, timeout_s=args.timeout)
               for plan_id in args.plan_ids]
    return _serve_records(records, args.json)


def _cmd_selftest(args) -> int:
    if args.only:
        requested = [name.strip() for name in args.only.split(",")
                     if name.strip()]
        unknown = sorted(set(requested) - set(SELFTEST_SUITES))
        if unknown:
            print(f"unknown selftest suite(s): {', '.join(unknown)}; "
                  f"choose from {', '.join(SELFTEST_SUITES)}")
            return 2
        suites = [name for name in SELFTEST_SUITES if name in requested]
    else:
        suites = [name for name in SELFTEST_SUITES
                  if name != "objstore" or args.backend == "obj"]
    failures = 0
    for suite in suites:
        print(f"=== {suite} ===", flush=True)
        if suite == "lint":
            from repro.analysis.lint import main as lint_main

            failures += lint_main(["--selftest"])
        elif suite == "session":
            from repro.analysis.session import main as session_main

            failures += session_main(["--selftest"])
        elif suite == "obs":
            from repro.analysis.obs import main as obs_main

            failures += obs_main(["--selftest"])
        elif suite == "runner":
            from repro.analysis.runner import main as runner_main

            failures += runner_main(["--selftest"])
        elif suite == "objstore":
            from repro.analysis.objstore import main as objstore_main

            failures += objstore_main(["--selftest"])
        elif suite == "cache":
            failures += _forward_cache(["--selftest", "--backend",
                                        args.backend])
        elif suite == "distrib":
            failures += _forward_distrib(["--selftest", "--backend",
                                          args.backend])
        elif suite == "serve":
            from repro.analysis.serve import main as serve_main

            failures += serve_main(["--selftest"])
    print("selftest matrix:", "PASS" if failures == 0
          else f"{failures} suite failure(s)")
    return 0 if failures == 0 else 1


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, cache, distribute and smoke-test the paper's "
                    "experiment plans through one entry point.",
        epilog="Execution policy for 'run' resolves as: flags > REPRO_* "
               "environment variables > repro.toml ([run] table) > "
               "defaults.")
    commands = parser.add_subparsers(dest="command")

    run_cmd = commands.add_parser(
        "run", help="execute a plan through a Session",
        description="Execute MODULE:FACTORY — a callable returning "
                    "(plan, quantities) — through a Session wired from "
                    "the resolved RunConfig.")
    run_cmd.add_argument("--plan", required=True,
                         help="MODULE:CALLABLE returning (plan, quantities)"
                              " — e.g. repro.analysis.distrib:selftest_plan")
    run_cmd.add_argument("--workers", default=None, metavar="N|auto",
                         help="pool size (auto = cpu count; default: "
                              "resolved)")
    run_cmd.add_argument("--cache-mode", default=None,
                         choices=("off", "rw", "ro"),
                         help="persistent-cache mode (default: resolved)")
    run_cmd.add_argument("--cache-root", default=None, metavar="SPEC",
                         help="cache root: a directory, a bucket URL, or "
                              "fs / obj:URL (default: resolved)")
    run_cmd.add_argument("--distrib-root", default=None, metavar="ROOT",
                         help="shared fleet root — directory or bucket URL "
                              "(default: resolved; none = local execution)")
    run_cmd.add_argument("--shard-size", default=None, metavar="N",
                         help="points per distrib shard (default: resolved)")
    run_cmd.add_argument("--config", default=None, metavar="FILE",
                         help="repro.toml to resolve from (default: "
                              "$REPRO_CONFIG or ./repro.toml)")
    run_cmd.add_argument("--json", action="store_true",
                         help="emit config, values and provenance as JSON")

    # Registered for --help only; dispatch short-circuits before argparse
    # so every flag (e.g. cache's --stats) reaches the module main intact.
    commands.add_parser(
        "cache", add_help=False,
        help="persistent-cache maintenance "
             "(alias of python -m repro.analysis.cache)")
    commands.add_parser(
        "distrib", add_help=False,
        help="fleet worker/submit/status/run "
             "(alias of python -m repro.analysis.distrib)")
    commands.add_parser(
        "campaign", add_help=False,
        help="scenario campaigns and the invariant fuzzer "
             "(alias of python -m repro.analysis.campaign)")
    commands.add_parser(
        "obs", add_help=False,
        help="observability: perf-trajectory append/check and the live "
             "fleet dashboard (alias of python -m repro.analysis.obs)")
    commands.add_parser(
        "check", add_help=False,
        help="project-invariant static analysis over src/ — determinism, "
             "store layering, clock/lock discipline, batched cache keys "
             "(alias of python -m repro.analysis.lint)")

    # Like cache/distrib/campaign: registered for --help only, dispatch
    # short-circuits to _cmd_serve's own parser.
    commands.add_parser(
        "serve", add_help=False,
        help="experiment service: start/submit/status/wait, plus the "
             "objstore server (bare 'serve' = deprecated objstore alias)")

    selftest_cmd = commands.add_parser(
        "selftest", help="run the module selftests "
                         "(session, runner, cache, distrib, serve"
                         "[, objstore])")
    selftest_cmd.add_argument("--backend", choices=("fs", "obj"),
                              default="fs",
                              help="storage backend for the cache/distrib "
                                   "suites; obj adds the objstore protocol "
                                   "suite (default: fs)")
    selftest_cmd.add_argument("--only", default=None, metavar="LIST",
                              help="comma-separated subset of: "
                                   + ", ".join(SELFTEST_SUITES))
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch one consolidated-CLI invocation; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Forwarded subcommands bypass argparse entirely: their flags belong
    # to the module mains, and argparse's REMAINDER handling would eat
    # leading options.
    if argv and argv[0] in _FORWARDED:
        return _FORWARDED[argv[0]](argv[1:])
    from repro.errors import ConfigurationError

    try:
        if argv and argv[0] == "serve":
            # Like the forwarded subcommands, serve parses its own argv
            # (it keeps the legacy flag spelling alive); the transport
            # errors of its client subcommands are user-facing too.
            from repro.analysis.serve.client import ServiceError

            try:
                return _cmd_serve(argv[1:])
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        parser = _build_parser()
        args = parser.parse_args(argv)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "selftest":
            return _cmd_selftest(args)
    except ConfigurationError as exc:
        # Misconfiguration is a user error: one clear line, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
