"""Measurement probes: energy, activity and power-over-time.

The paper's core thesis is that *the amount of computation is modulated by
the energy supplied*; the probes are how the library observes both sides of
that equality — :class:`EnergyProbe` integrates the energy drawn by a block
and :class:`ActivityProbe` counts the useful transitions it produced.  Their
ratio is the energy-per-transition figure that the charge-to-digital
converter exploits, and their correlation over a run is the
power-proportionality metric of Fig. 1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import EnergyAccountingError
from repro.sim.signals import Signal


@dataclass
class EnergySample:
    """One recorded energy draw."""

    time: float
    energy: float
    label: str = ""


class EnergyProbe:
    """Accumulates the energy drawn by some part of the design.

    Components call :meth:`record` each time they draw energy from a supply.
    The probe keeps both the running total and the individual samples so
    power can be reconstructed over arbitrary windows.
    """

    def __init__(self, name: str = "energy") -> None:
        self.name = name
        self.samples: List[EnergySample] = []
        self._total = 0.0
        self._per_label: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def record(self, energy: float, time: float, label: str = "") -> None:
        """Record an *energy* (joules) draw at *time* attributed to *label*."""
        if energy < 0:
            raise EnergyAccountingError(
                f"negative energy draw ({energy}) recorded on probe {self.name!r}"
            )
        if energy != energy:  # NaN check
            raise EnergyAccountingError(f"NaN energy recorded on probe {self.name!r}")
        self.samples.append(EnergySample(time=time, energy=energy, label=label))
        self._total += energy
        if label:
            self._per_label[label] = self._per_label.get(label, 0.0) + energy

    @property
    def total(self) -> float:
        """Total energy recorded so far, in joules."""
        return self._total

    def by_label(self) -> Dict[str, float]:
        """Energy totals grouped by label (e.g. per sub-block)."""
        return dict(self._per_label)

    def energy_between(self, start: float, end: float) -> float:
        """Energy recorded in the half-open window ``[start, end)``."""
        if end < start:
            raise EnergyAccountingError("window end before start")
        return sum(s.energy for s in self.samples if start <= s.time < end)

    def average_power(self, start: float, end: float) -> float:
        """Mean power in watts over ``[start, end)``."""
        duration = end - start
        if duration <= 0:
            raise EnergyAccountingError("window must have positive duration")
        return self.energy_between(start, end) / duration

    def power_series(self, window: float, start: float = 0.0,
                     end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Average power in consecutive windows of width *window* seconds.

        Returns ``[(window_start, power_watts), ...]`` — the series used to
        plot power profiles of harvester-driven runs.
        """
        if window <= 0:
            raise EnergyAccountingError("window must be positive")
        if end is None:
            end = max((s.time for s in self.samples), default=start) + window
        series: List[Tuple[float, float]] = []
        t = start
        while t < end:
            series.append((t, self.average_power(t, t + window)))
            t += window
        return series

    def reset(self) -> None:
        """Clear all recorded samples."""
        self.samples.clear()
        self._total = 0.0
        self._per_label.clear()


class ActivityProbe:
    """Counts transitions on a set of signals as "useful activity".

    The probe subscribes to the signals it is given; every observed change
    increments the count with its timestamp, allowing activity-versus-time
    and activity-versus-energy curves to be produced.
    """

    def __init__(self, name: str = "activity",
                 signals: Iterable[Signal] = ()) -> None:
        self.name = name
        self.transition_times: List[float] = []
        self._watched: List[Signal] = []
        for signal in signals:
            self.watch(signal)

    # ------------------------------------------------------------------

    def watch(self, signal: Signal) -> None:
        """Start counting transitions of *signal*."""
        signal.subscribe(self._on_change)
        self._watched.append(signal)

    def _on_change(self, signal: Signal, value: bool, time: float) -> None:
        self.transition_times.append(time)

    @property
    def count(self) -> int:
        """Total transitions observed."""
        return len(self.transition_times)

    def count_between(self, start: float, end: float) -> int:
        """Transitions observed in ``[start, end)``.

        The times list is append-only and non-decreasing, so binary search
        keeps this cheap even for very long runs.
        """
        lo = bisect.bisect_left(self.transition_times, start)
        hi = bisect.bisect_left(self.transition_times, end)
        return hi - lo

    def rate(self, start: float, end: float) -> float:
        """Transitions per second over ``[start, end)``."""
        duration = end - start
        if duration <= 0:
            raise EnergyAccountingError("window must have positive duration")
        return self.count_between(start, end) / duration

    def reset(self) -> None:
        """Forget all recorded transitions (watched signals stay watched)."""
        self.transition_times.clear()


@dataclass
class ProportionalityReport:
    """Activity-vs-energy summary used for the Fig. 1 style analysis."""

    energy: float
    activity: int
    energy_per_transition: float
    idle_energy_fraction: float


def proportionality_report(energy_probe: EnergyProbe,
                           activity_probe: ActivityProbe,
                           idle_labels: Sequence[str] = ("leakage", "idle"),
                           ) -> ProportionalityReport:
    """Summarise how proportional the recorded energy was to useful activity.

    ``idle_energy_fraction`` is the share of energy attributed to the given
    idle labels (leakage, idle retention, ...) — an ideally
    energy-proportional system drives this to zero.
    """
    total = energy_probe.total
    activity = activity_probe.count
    per_label = energy_probe.by_label()
    idle = sum(per_label.get(label, 0.0) for label in idle_labels)
    per_transition = total / activity if activity else float("inf")
    idle_fraction = idle / total if total > 0 else 0.0
    return ProportionalityReport(
        energy=total,
        activity=activity,
        energy_per_transition=per_transition,
        idle_energy_fraction=idle_fraction,
    )
