"""Priority event queue used by the simulation kernel."""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional

from repro.errors import SchedulingError
from repro.sim.events import Event


class EventQueue:
    """A binary-heap event queue with lazy deletion of cancelled events.

    The kernel only ever needs three operations — push, pop-earliest and
    peek-earliest-time — so a plain :mod:`heapq` is both the simplest and the
    fastest structure available in pure Python.  Cancelled events stay in the
    heap and are discarded when they surface, which keeps cancellation O(1).
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._pushed = 0
        self._popped = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        """Iterate over pending (non-cancelled) events in arbitrary order."""
        return (event for event in self._heap if not event.cancelled)

    @property
    def pushed_count(self) -> int:
        """Total number of events ever pushed (kernel statistics)."""
        return self._pushed

    @property
    def popped_count(self) -> int:
        """Total number of events ever popped (kernel statistics)."""
        return self._popped

    # ------------------------------------------------------------------

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (for convenient chaining)."""
        heapq.heappush(self._heap, event)
        self._pushed += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending event.

        Cancelled events are silently discarded.  Raises
        :class:`~repro.errors.SchedulingError` when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._popped += 1
            return event
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def prune(self) -> int:
        """Physically remove cancelled events; returns how many were removed.

        Only useful for extremely long simulations where cancelled events
        would otherwise accumulate; the kernel calls it opportunistically.
        """
        before = len(self._heap)
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        return before - len(self._heap)
