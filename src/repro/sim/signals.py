"""Signals and nets: named boolean wires with waveform history.

A :class:`Signal` is a single wire whose value changes are driven through the
simulator; every change is recorded (time, value) so the waveform figures of
the paper (Figs. 4 and 7) can be regenerated as data series, and listeners
(gates, controllers, probes) are notified synchronously.

A :class:`Net` is a simple bundle of signals with vector read/write helpers,
used for buses such as SRAM data words and counter outputs.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

Listener = Callable[["Signal", bool, float], None]


class Signal:
    """A boolean wire with change history and synchronous listeners.

    Parameters
    ----------
    name:
        Hierarchical name used in traces, e.g. ``"sram.ctrl.precharge_req"``.
    initial:
        Initial logic value.
    record:
        When ``True`` (default) every change is appended to :attr:`history`.
        Dense internal nodes of large arrays switch recording off to save
        memory.
    """

    __slots__ = ("name", "_value", "record", "history", "_listeners",
                 "transition_count", "last_change_time")

    def __init__(self, name: str, initial: bool = False, record: bool = True) -> None:
        self.name = name
        self._value = bool(initial)
        self.record = record
        self.history: List[Tuple[float, bool]] = [(0.0, self._value)] if record else []
        self._listeners: List[Listener] = []
        self.transition_count = 0
        self.last_change_time = 0.0

    # ------------------------------------------------------------------

    @property
    def value(self) -> bool:
        """Current logic value."""
        return self._value

    def subscribe(self, listener: Listener) -> None:
        """Register *listener(signal, new_value, time)* called on every change."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Listener) -> None:
        """Remove a previously registered listener (no error if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def set(self, value: bool, time: float) -> bool:
        """Drive the signal to *value* at *time*; returns ``True`` if it changed.

        This is normally called by the :class:`~repro.sim.simulator.Simulator`
        when a scheduled signal event fires, not by user code directly.
        """
        value = bool(value)
        if time < self.last_change_time:
            raise SimulationError(
                f"signal {self.name!r} driven backwards in time "
                f"({time} < {self.last_change_time})"
            )
        if value == self._value:
            return False
        self._value = value
        self.transition_count += 1
        self.last_change_time = time
        if self.record:
            self.history.append((time, value))
        for listener in tuple(self._listeners):
            listener(self, value, time)
        return True

    # ------------------------------------------------------------------
    # History utilities
    # ------------------------------------------------------------------

    def value_at(self, time: float) -> bool:
        """Value the signal held at *time* (according to the recorded history)."""
        if not self.record:
            raise SimulationError(f"signal {self.name!r} does not record history")
        result = self.history[0][1]
        for change_time, value in self.history:
            if change_time > time:
                break
            result = value
        return result

    def edges(self, rising: Optional[bool] = None) -> List[float]:
        """Times of recorded edges; filter by direction with *rising*."""
        if not self.record:
            raise SimulationError(f"signal {self.name!r} does not record history")
        times: List[float] = []
        for (prev_t, prev_v), (cur_t, cur_v) in zip(self.history, self.history[1:]):
            if prev_v == cur_v:
                continue
            if rising is None or cur_v == rising:
                times.append(cur_t)
        return times

    def pulse_count(self) -> int:
        """Number of complete 0→1→0 pulses recorded."""
        return min(len(self.edges(rising=True)), len(self.edges(rising=False)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name}={int(self._value)} " \
               f"transitions={self.transition_count}>"


class Net:
    """An ordered bundle of signals (a bus), least-significant bit first."""

    def __init__(self, name: str, width: int, initial: int = 0,
                 record: bool = True) -> None:
        if width < 1:
            raise SimulationError(f"net width must be >= 1, got {width}")
        if initial < 0 or initial >= (1 << width):
            raise SimulationError(
                f"initial value {initial} does not fit in {width} bits"
            )
        self.name = name
        self.width = width
        self.bits: List[Signal] = [
            Signal(f"{name}[{i}]", initial=bool((initial >> i) & 1), record=record)
            for i in range(width)
        ]

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.width

    def __iter__(self):
        return iter(self.bits)

    def __getitem__(self, index: int) -> Signal:
        return self.bits[index]

    @property
    def value(self) -> int:
        """Current integer value of the bus."""
        word = 0
        for i, bit in enumerate(self.bits):
            if bit.value:
                word |= 1 << i
        return word

    def set_value(self, value: int, time: float) -> None:
        """Drive all bits of the bus to encode *value* at *time*."""
        if value < 0 or value >= (1 << self.width):
            raise SimulationError(
                f"value {value} does not fit in {self.width} bits on net {self.name}"
            )
        for i, bit in enumerate(self.bits):
            bit.set(bool((value >> i) & 1), time)

    def transition_count(self) -> int:
        """Total transitions across all bits."""
        return sum(bit.transition_count for bit in self.bits)

    def as_bools(self) -> List[bool]:
        """Current values, LSB first."""
        return [bit.value for bit in self.bits]


def vector_value(signals: Sequence[Signal]) -> int:
    """Interpret a sequence of signals (LSB first) as an unsigned integer."""
    word = 0
    for i, signal in enumerate(signals):
        if signal.value:
            word |= 1 << i
    return word


def thermometer_value(signals: Iterable[Signal]) -> int:
    """Count the leading run of asserted signals (a thermometer code).

    The reference-free voltage sensor (Fig. 12) produces its measurement in
    this encoding: the number of inverter-chain stages the "ruler" transition
    passed before the SRAM completion event froze it.
    """
    count = 0
    for signal in signals:
        if not signal.value:
            break
        count += 1
    return count
