"""Discrete-event simulation kernel with energy accounting.

The kernel replaces the analogue (Cadence) simulations of the paper with an
event-driven model that is aware of two things analogue simulators give you
for free:

* **the instantaneous supply voltage** — every scheduled transition asks its
  supply node for the voltage *at scheduling time* and computes its delay
  from it, so AC or collapsing supplies naturally slow the logic down;
* **energy conservation** — every transition reports the charge/energy it
  drew back to its supply node, so a capacitor-powered circuit (the
  charge-to-digital converter) runs its supply down and eventually stalls.

Public API
----------
:class:`~repro.sim.simulator.Simulator`
    The event loop.
:class:`~repro.sim.signals.Signal`, :class:`~repro.sim.signals.Net`
    Boolean signals with waveform recording.
:class:`~repro.sim.events.Event`, :class:`~repro.sim.events.EventKind`
    Scheduled occurrences.
:class:`~repro.sim.probes.EnergyProbe`, :class:`~repro.sim.probes.ActivityProbe`
    Measurement hooks.
:class:`~repro.sim.waveform.WaveformRecorder`
    Trace capture and text rendering (the library's stand-in for the paper's
    waveform figures 4 and 7).
"""

from repro.sim.events import Event, EventKind
from repro.sim.scheduler import EventQueue
from repro.sim.signals import Net, Signal
from repro.sim.simulator import Simulator
from repro.sim.probes import ActivityProbe, EnergyProbe
from repro.sim.waveform import WaveformRecorder

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "Net",
    "Signal",
    "Simulator",
    "ActivityProbe",
    "EnergyProbe",
    "WaveformRecorder",
]
