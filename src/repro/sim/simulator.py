"""The discrete-event simulation kernel.

The :class:`Simulator` advances time by popping the earliest pending
:class:`~repro.sim.events.Event` and firing it.  It knows nothing about
voltages, gates or memories — those live in the circuit packages — but it
provides the scheduling primitives they need:

* ``schedule`` / ``schedule_at`` for callbacks,
* ``schedule_signal`` for driving :class:`~repro.sim.signals.Signal` objects,
* ``run`` / ``run_until_idle`` / ``step`` to advance time,
* watchdogs (maximum events, maximum time) so livelocks in experimental
  circuits terminate with a useful error instead of hanging.

Determinism: for equal timestamps, events fire in (priority, scheduling
order), so a simulation is a pure function of its inputs and seeds.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import DeadlockError, SchedulingError, SimulationError
from repro.sim.events import Event, EventKind
from repro.sim.scheduler import EventQueue
from repro.sim.signals import Signal


class Simulator:
    """Event-driven simulation kernel.

    Parameters
    ----------
    max_events:
        Hard cap on the number of fired events; exceeded means the circuit is
        livelocked (e.g. an oscillator that nobody stops) and raises
        :class:`~repro.errors.SimulationError`.
    trace:
        Optional callable invoked as ``trace(event)`` after every fired
        event — handy for debugging protocol issues.
    """

    def __init__(self, max_events: int = 5_000_000,
                 trace: Optional[Callable[[Event], None]] = None) -> None:
        if max_events < 1:
            raise SchedulingError("max_events must be >= 1")
        self._queue = EventQueue()
        self._now = 0.0
        self._fired = 0
        self.max_events = max_events
        self.trace = trace
        self._stopped = False
        self._idle_hooks: List[Callable[[float], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def fired_events(self) -> int:
        """Number of events fired so far."""
        return self._fired

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stopped

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None], *,
                 kind: EventKind = EventKind.CALLBACK, priority: int = 0,
                 label: str = "") -> Event:
        """Schedule *action* to run *delay* seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, kind=kind,
                                priority=priority, label=label)

    def schedule_at(self, time: float, action: Callable[[], None], *,
                    kind: EventKind = EventKind.CALLBACK, priority: int = 0,
                    label: str = "") -> Event:
        """Schedule *action* at absolute simulation *time*."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        event = Event(time=time, action=action, kind=kind, priority=priority,
                      label=label)
        return self._queue.push(event)

    def schedule_signal(self, signal: Signal, value: bool, delay: float, *,
                        label: str = "") -> Event:
        """Schedule *signal* to take *value* after *delay* seconds."""
        target_time = self._now + delay

        def _drive() -> None:
            signal.set(value, target_time)

        return self.schedule(delay, _drive, kind=EventKind.SIGNAL,
                             label=label or signal.name)

    def call_when_idle(self, hook: Callable[[float], None]) -> None:
        """Register *hook(time)* to run when the event queue drains."""
        self._idle_hooks.append(hook)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> Event:
        """Fire exactly one pending event and return it."""
        if not self._queue:
            raise DeadlockError("no pending events to step")
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError(
                f"event queue returned a stale event ({event.time} < {self._now})"
            )
        self._now = event.time
        self._fired += 1
        if self._fired > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                "the circuit is probably livelocked"
            )
        event.fire()
        if self.trace is not None:
            self.trace(event)
        return event

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, *until* seconds, or :meth:`stop`.

        Returns the simulation time at which the run stopped.  Events
        scheduled exactly at *until* are executed; later ones are left
        pending so the simulation can be resumed.
        """
        if until is not None and until < self._now:
            raise SchedulingError(f"until={until} is in the past (now={self._now})")
        self._stopped = False
        while self._queue and not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                return self._now
            self.step()
        if not self._queue:
            for hook in tuple(self._idle_hooks):
                hook(self._now)
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return self._now

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Run until no events remain; optionally bounded by *max_time*.

        Raises :class:`~repro.errors.DeadlockError` if *max_time* elapses
        while events are still pending — that usually means a handshake never
        completed.
        """
        end = self.run(until=max_time)
        if max_time is not None and self.pending_events and end >= max_time:
            raise DeadlockError(
                f"simulation still has {self.pending_events} pending events "
                f"at max_time={max_time}"
            )
        return end

    # ------------------------------------------------------------------

    def advance_to(self, time: float) -> None:
        """Move the clock forward with no events (used by test fixtures)."""
        if time < self._now:
            raise SchedulingError("cannot move time backwards")
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self._now:.3e}s fired={self._fired} "
                f"pending={self.pending_events}>")
