"""Waveform recording and text rendering.

The paper presents several results as analogue waveform screenshots (the
2-bit dual-rail counter under an AC supply, Fig. 4; the SI SRAM under varying
Vdd, Fig. 7).  The behavioural equivalent is a :class:`WaveformRecorder`
holding the value-change history of a set of signals plus any analogue traces
(supply voltages), able to

* export the data series (for EXPERIMENTS.md and the benchmarks), and
* render a compact ASCII timing diagram, which is what the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.signals import Signal


@dataclass
class AnalogTrace:
    """A sampled analogue quantity (e.g. a supply voltage) over time."""

    name: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Record *value* at *time* (times must be non-decreasing)."""
        if self.samples and time < self.samples[-1][0]:
            raise SimulationError(
                f"analog trace {self.name!r} sampled backwards in time"
            )
        self.samples.append((time, value))

    def value_at(self, time: float) -> float:
        """Most recent sample at or before *time*."""
        if not self.samples:
            raise SimulationError(f"analog trace {self.name!r} has no samples")
        result = self.samples[0][1]
        for sample_time, value in self.samples:
            if sample_time > time:
                break
            result = value
        return result

    def minimum(self) -> float:
        """Smallest recorded value."""
        return min(v for _, v in self.samples)

    def maximum(self) -> float:
        """Largest recorded value."""
        return max(v for _, v in self.samples)


class WaveformRecorder:
    """Collects digital signals and analogue traces for one simulation run."""

    def __init__(self, name: str = "waves") -> None:
        self.name = name
        self._signals: List[Signal] = []
        self._analog: Dict[str, AnalogTrace] = {}

    # ------------------------------------------------------------------

    def add_signal(self, signal: Signal) -> Signal:
        """Track *signal* (it must have recording enabled)."""
        if not signal.record:
            raise SimulationError(
                f"signal {signal.name!r} has recording disabled"
            )
        self._signals.append(signal)
        return signal

    def add_signals(self, signals: Iterable[Signal]) -> None:
        """Track several signals at once."""
        for signal in signals:
            self.add_signal(signal)

    def analog(self, name: str) -> AnalogTrace:
        """Get (or create) the analogue trace called *name*."""
        if name not in self._analog:
            self._analog[name] = AnalogTrace(name=name)
        return self._analog[name]

    @property
    def signals(self) -> Sequence[Signal]:
        """The tracked digital signals, in insertion order."""
        return tuple(self._signals)

    @property
    def analog_traces(self) -> Dict[str, AnalogTrace]:
        """The analogue traces keyed by name."""
        return dict(self._analog)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def end_time(self) -> float:
        """Latest timestamp present in any trace."""
        latest = 0.0
        for signal in self._signals:
            if signal.history:
                latest = max(latest, signal.history[-1][0])
        for trace in self._analog.values():
            if trace.samples:
                latest = max(latest, trace.samples[-1][0])
        return latest

    def digital_series(self) -> Dict[str, List[Tuple[float, bool]]]:
        """Value-change lists keyed by signal name."""
        return {signal.name: list(signal.history) for signal in self._signals}

    def sample_grid(self, points: int = 100,
                    end: Optional[float] = None) -> Dict[str, List[float]]:
        """Resample every trace onto a uniform grid of *points* instants.

        Returns a dict with a ``"time"`` vector plus one vector per signal
        (0.0/1.0) and per analogue trace.  This is the exchange format the
        benchmark harness stores in EXPERIMENTS.md tables.
        """
        if points < 2:
            raise SimulationError("points must be >= 2")
        if end is None:
            end = self.end_time()
        if end <= 0:
            end = 1.0
        times = [end * i / (points - 1) for i in range(points)]
        grid: Dict[str, List[float]] = {"time": times}
        for signal in self._signals:
            grid[signal.name] = [1.0 if signal.value_at(t) else 0.0 for t in times]
        for name, trace in self._analog.items():
            grid[name] = [trace.value_at(t) for t in times]
        return grid

    # ------------------------------------------------------------------
    # ASCII rendering
    # ------------------------------------------------------------------

    def render_ascii(self, width: int = 72, end: Optional[float] = None) -> str:
        """Render the recorded waveforms as an ASCII timing diagram.

        Digital signals render as ``▔``/``▁`` runs; analogue traces as a
        single row of digits 0–9 proportional to their min–max range.  The
        output is intentionally compact — it is printed by the example
        scripts as the stand-in for the paper's oscilloscope figures.
        """
        if width < 8:
            raise SimulationError("width must be >= 8")
        if end is None:
            end = self.end_time()
        if end <= 0:
            end = 1.0
        times = [end * i / (width - 1) for i in range(width)]
        name_width = max(
            [len(s.name) for s in self._signals]
            + [len(t) for t in self._analog]
            + [4]
        )
        lines: List[str] = []
        header = " " * name_width + " 0" + " " * (width - 10) + f"{end:.3e}s"
        lines.append(header)
        for signal in self._signals:
            row = "".join(
                "▔" if signal.value_at(t) else "▁" for t in times
            )
            lines.append(f"{signal.name:<{name_width}} {row}")
        for name, trace in self._analog.items():
            low, high = trace.minimum(), trace.maximum()
            span = (high - low) or 1.0
            row = "".join(
                str(min(9, int(9 * (trace.value_at(t) - low) / span)))
                for t in times
            )
            lines.append(f"{name:<{name_width}} {row}   "
                         f"[{low:.3g} .. {high:.3g}]")
        return "\n".join(lines)
