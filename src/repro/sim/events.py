"""Event objects scheduled by the simulation kernel."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SchedulingError

#: Monotonic tiebreaker so simultaneous events pop in scheduling order.
_SEQUENCE = itertools.count()


class EventKind(enum.Enum):
    """Categories of events, used by probes and trace filtering."""

    #: A signal changes value (the bread-and-butter logic event).
    SIGNAL = "signal"
    #: A generic callback with no associated signal (controllers, sources).
    CALLBACK = "callback"
    #: A supply-voltage update (AC supplies, harvester steps).
    SUPPLY = "supply"
    #: A probe sampling instant.
    SAMPLE = "sample"
    #: End-of-simulation sentinel.
    STOP = "stop"


@dataclass(order=False)
class Event:
    """One scheduled occurrence.

    Events compare by ``(time, priority, sequence)`` so the queue is stable:
    two events at the same instant fire in the order they were scheduled
    unless their priorities differ (lower priority value fires first).
    """

    time: float
    action: Callable[[], None]
    kind: EventKind = EventKind.CALLBACK
    priority: int = 0
    label: str = ""
    payload: Any = None
    cancelled: bool = False
    sequence: int = field(default_factory=lambda: next(_SEQUENCE))

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchedulingError(f"event time must be non-negative, got {self.time}")
        if not callable(self.action):
            raise SchedulingError("event action must be callable")

    # Explicit comparison methods (rather than dataclass order=True) so that
    # the callable/payload fields never participate in comparisons.
    def _key(self) -> tuple:
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    def cancel(self) -> None:
        """Mark the event as cancelled; the kernel skips cancelled events.

        Cancellation is how inertial-delay style behaviour is implemented:
        a gate that re-evaluates before its pending output event fires can
        cancel the stale event and schedule a fresh one.
        """
        self.cancelled = True

    def fire(self) -> None:
        """Execute the event's action (no-op if cancelled)."""
        if not self.cancelled:
            self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        label = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.3e}s {self.kind.value}{label}{state}>"


def make_stop_event(time: float) -> Event:
    """Create a sentinel event that simply marks the end of simulation."""
    return Event(time=time, action=lambda: None, kind=EventKind.STOP,
                 priority=10_000, label="stop")
