#!/usr/bin/env python3
"""Quickstart: the energy-modulated computing stack in five minutes.

The paper's claim is that energy should *modulate* computation: a fabric
built from self-timed logic keeps working — just more slowly — as its
supply collapses, so every scavenged nanojoule turns into useful
operations instead of being gated away.  The script walks that storyline
end to end:

1. compare Design 1 (speed-independent) and Design 2 (bundled data) over
   the supply range — the Fig. 2 trade-off — plus a Vdd × temperature
   grid only the experiment engine can express;
2. run the 2-bit dual-rail counter from an AC rail of 200 mV ± 100 mV
   (Fig. 4) through the library's scenario runner;
3. convert a sampled charge into a digital code with the self-timed
   counter (Figs. 9-11);
4. close the holistic loop: a vibration harvester powering a
   power-adaptive hybrid fabric (Fig. 3).

Running experiments
-------------------
Every figure here is an :class:`~repro.analysis.runner.ExperimentPlan`
executed through one :class:`~repro.analysis.session.Session` — the same
front door the benchmark suite and the ``python -m repro`` CLI use.  The
whole experiment stack is two lines::

    session = Session()               # config from kwargs/REPRO_*/repro.toml
    result = session.run(plan, energy=design.energy_per_operation)

``Session(workers="auto")`` fans points over a process pool
bit-identically; ``Session(cache_mode="rw")`` replays finished plans from
``.repro_cache/`` on the next invocation; ``session.submit()`` puts
several plans in flight at once.  See ``docs/architecture.md`` for the
plan/session/cache mental model.

Run it from the repository root with:

    PYTHONPATH=src python examples/quickstart.py

(or ``pip install -e .`` once and drop the prefix).
"""

from repro import Session, get_technology
from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.core import (
    BundledDataDesign,
    EnergyModulatedSystem,
    HybridDesign,
    QoSCurve,
    QoSMetric,
    SpeedIndependentDesign,
    qos_point,
)
from repro.power import ACSupply, VibrationHarvester
from repro.selftimed.counter import run_dualrail_scenario
from repro.sensors import ChargeToDigitalConverter
from repro.sensors.charge_to_digital import conversion_metrics


def step_1_design_styles(session, tech):
    """Fig. 2 — power-proportional versus power-efficient design.

    Instead of hand-rolling a loop over Vdd, each experiment is *declared*
    as an :class:`ExperimentPlan` and handed to the session.  The sweep
    and the 2-D grid are submitted together — two plans in flight on the
    same session, gathered when both land, bit-identical to running them
    one after the other.
    """
    design1 = SpeedIndependentDesign(tech)
    design2 = BundledDataDesign(tech)

    def qos(design):
        return lambda v: qos_point(design, v)

    plan = ExperimentPlan.sweep("vdd", [0.2, 0.3, 0.4, 0.5, 0.7, 1.0])

    # A 2-D grid the old sweep() could not express: throughput of the SI
    # fabric over Vdd × junction temperature (sub-threshold delay is highly
    # temperature-sensitive).  The session's keyed technology cache
    # rebuilds each shifted technology exactly once.
    grid_plan = ExperimentPlan.grid("vdd", [0.25, 0.4, 0.7, 1.0],
                                    "temperature_k", [250.0, 300.0, 350.0])

    def throughput(vdd, temperature_k):
        warm = session.cache.scaled(tech, temperature_k=temperature_k)
        return SpeedIndependentDesign(warm).throughput(vdd)

    handles = [
        session.submit(plan, design1=qos(design1), design2=qos(design2)),
        session.submit(grid_plan, throughput=throughput),
    ]
    result, grid = session.gather(handles)

    curve1 = QoSCurve("design1", QoSMetric.THROUGHPUT,
                      result.series("design1").points)
    curve2 = QoSCurve("design2", QoSMetric.THROUGHPUT,
                      result.series("design2").points)
    print(format_table(
        "Step 1 — QoS (ops/s) versus Vdd",
        ["Vdd (V)", "Design 1 (SI dual-rail)", "Design 2 (bundled data)"],
        [[vdd, y1, y2] for (vdd, y1), (_, y2)
         in zip(curve1.points, curve2.points)]))
    print(f"\nDesign 1 wakes up at {curve1.onset_voltage():.2f} V, "
          f"Design 2 only at {curve2.onset_voltage():.2f} V — but at 1 V "
          f"Design 2 spends "
          f"{design1.energy_per_operation(1.0) / design2.energy_per_operation(1.0):.1f}x "
          "less energy per operation.\n")

    print(format_table(
        "Step 1b — SI throughput (ops/s) over Vdd × temperature",
        ["Vdd (V)", "250 K", "300 K", "350 K"],
        [[vdd] + row for vdd, row
         in zip(grid_plan.axes[0].values, grid.value_grid("throughput"))],
        unit_hints=["V", "", "", ""]))
    print(f"\n(grid ran {grid.provenance.points} points on the "
          f"'{grid.provenance.executor}' executor in "
          f"{grid.provenance.wall_time_s * 1e3:.1f} ms; technology cache "
          f"{grid.provenance.cache_hits} hits / "
          f"{grid.provenance.cache_misses} misses)\n")


def step_2_counter_on_ac_supply(tech):
    """Fig. 4 — a dual-rail counter that cannot be upset by its supply.

    The 4-phase testbench lives in the library
    (:func:`repro.selftimed.counter.run_dualrail_scenario`), so the
    benchmark suite and this example share one scenario definition.
    """
    supply = ACSupply(offset=0.2, amplitude=0.1, frequency=1e6)
    run = run_dualrail_scenario(tech, supply, steps=8, handshake_gap=1e-9)

    print("Step 2 — dual-rail counter on a 200 mV ± 100 mV, 1 MHz AC rail")
    print(f"  emitted sequence : {run.values_emitted}")
    print(f"  sequence correct : {run.sequence_correct}")
    print(f"  energy consumed  : {run.energy:.3e} J\n")


def step_3_charge_to_code(session, tech):
    """Figs. 9-11 — energy quanta turned directly into computation.

    Declared as a plan over the sampled voltage; each point is one
    event-driven conversion
    (:func:`repro.sensors.charge_to_digital.conversion_metrics`).
    """
    converter = ChargeToDigitalConverter(technology=tech,
                                         sampling_capacitance=30e-12)
    # Memoise one event-driven conversion per point so the three quantities
    # share a single simulation — the same idiom the benchmarks use.
    conversions = {}

    def converted(v):
        if v not in conversions:
            conversions[v] = conversion_metrics(converter, v)
        return conversions[v]

    plan = ExperimentPlan.sweep("sampled_vdd", [0.4, 0.6, 0.8, 1.0])
    result = session.run(plan, {
        "count": lambda v: converted(v)["count"],
        "charge": lambda v: converted(v)["charge_consumed"],
        "time": lambda v: converted(v)["conversion_time"],
    })
    rows = [[v, int(result.series("count").value_at(v)),
             result.series("charge").value_at(v),
             result.series("time").value_at(v)]
            for v in plan.axes[0].values]
    print(format_table(
        "Step 3 — charge-to-digital conversion (30 pF sampling capacitor)",
        ["sampled V", "final count", "charge used (C)", "time (s)"], rows))
    print()


def step_4_holistic_loop(tech):
    """Fig. 3 — the whole energy-modulated system."""
    system = EnergyModulatedSystem(
        harvester=VibrationHarvester(peak_power=150e-6, seed=1),
        design=HybridDesign(tech),
        storage_capacitance=47e-6,
        initial_store_voltage=1.5,
        control_interval=0.02,
    )
    report = system.run(2.0)
    print("Step 4 — power-adaptive system on a vibration harvester (2 s)")
    print(f"  energy harvested        : {report.energy_harvested:.3e} J")
    print(f"  operations completed    : {report.operations_completed}")
    print(f"  ops per harvested joule : {report.operations_per_joule_harvested:.3e}")
    print(f"  average rail voltage    : {report.average_rail_voltage:.2f} V")
    print(f"  duty profile            : {report.duty_profile}")


def main():
    tech = get_technology("cmos90")
    # One Session drives every plan below; its config resolves from
    # REPRO_* environment variables / repro.toml (defaults: serial,
    # cache off) so the same script scales to a pool, a persistent
    # cache or a fleet without editing code.
    with Session() as session:
        step_1_design_styles(session, tech)
        step_2_counter_on_ac_supply(tech)
        step_3_charge_to_code(session, tech)
    step_4_holistic_loop(tech)


if __name__ == "__main__":
    main()
