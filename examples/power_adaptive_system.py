#!/usr/bin/env python3
"""The holistic power-adaptive system of Fig. 3, compared with alternatives.

"Truly energy-modulated design has to be power-adaptive": this example runs
the same unstable energy-harvesting environment against three computational
fabrics —

* Design 1 only (speed-independent dual-rail, power-proportional),
* Design 2 only (bundled data, power-efficient but with a Vdd floor),
* the recommended hybrid under the power-adaptive controller,

and additionally shows the game-theoretic view of reference [16]: which
operating mode a rational power manager commits to when it does not know the
next epoch's harvest.

Running experiments
-------------------
The closed loop run here is the Fig. 3 benchmark's scenario
(``benchmarks/test_fig03_power_adaptive_loop.py`` declares it as an
:class:`~repro.analysis.runner.ExperimentPlan` whose quantities come from
:func:`repro.core.power_adaptive.loop_metrics`, executed through the
shared :class:`~repro.analysis.session.Session` — the same front door as
``python -m repro run``).  Run it from the repository root with:

    PYTHONPATH=src python examples/power_adaptive_system.py

(or ``pip install -e .`` once and drop the prefix).
"""

from repro import get_technology
from repro.analysis.report import format_table
from repro.core import (
    BundledDataDesign,
    EnergyModulatedSystem,
    HybridDesign,
    PowerManagementGame,
    SpeedIndependentDesign,
)
from repro.core.game import strategies_from_design
from repro.core.power_adaptive import AdaptationPolicy
from repro.power import VibrationHarvester

RUN_SECONDS = 3.0


def run_fabric(tech, design, seed=5):
    system = EnergyModulatedSystem(
        harvester=VibrationHarvester(peak_power=120e-6, wander=0.2, seed=seed),
        design=design,
        policy=AdaptationPolicy(store_low=0.8, store_high=2.0,
                                vdd_floor=0.25, vdd_nominal=1.0,
                                max_operations_per_step=200_000),
        storage_capacitance=47e-6,
        initial_store_voltage=1.2,
        control_interval=0.02,
    )
    return system.run(RUN_SECONDS)


def main():
    tech = get_technology("cmos90")

    fabrics = [
        ("Design 1 only (SI)", SpeedIndependentDesign(tech)),
        ("Design 2 only (bundled)", BundledDataDesign(tech)),
        ("Hybrid (power-adaptive)", HybridDesign(tech)),
    ]
    rows = []
    for name, design in fabrics:
        report = run_fabric(tech, design)
        rows.append([name, report.operations_completed,
                     report.energy_harvested,
                     report.operations_per_joule_harvested,
                     report.average_rail_voltage])
    print(format_table(
        f"The same harvester environment for {RUN_SECONDS:.0f} s, per fabric",
        ["fabric", "operations", "harvested", "ops per harvested J",
         "avg rail"],
        rows, unit_hints=["", "", "J", "", "V"]))
    print()

    # Game-theoretic epoch commitment (reference [16]).
    hybrid = HybridDesign(tech)
    strategies = strategies_from_design(hybrid, vdd_levels=[0.25, 0.5, 1.0],
                                        epoch_duration=0.02,
                                        salvage_fraction=0.05)
    game = PowerManagementGame(
        strategies,
        harvest_levels=[5e-6, 50e-6, 200e-6],
        harvest_probabilities=[0.4, 0.4, 0.2],
    )
    security = game.pure_security_strategy()
    informed = game.best_response_to()
    minimax = game.minimax_strategy()
    print(format_table(
        "Game-theoretic power management: which mode to commit to per epoch",
        ["solution concept", "chosen mode(s)", "guaranteed / expected QoS"],
        [["pure security (worst case)", security.best_pure_strategy,
          security.game_value],
         ["mixed minimax", minimax.best_pure_strategy, minimax.game_value],
         ["best response to the harvest forecast", informed.best_pure_strategy,
          informed.game_value]]))
    print("\nAverage QoS per epoch when actually playing these solutions "
          "against the stochastic harvest:")
    for label, solution in (("security", security), ("minimax", minimax),
                            ("informed", informed)):
        print(f"  {label:10s} : {game.simulate(solution, epochs=3000, seed=1):.3e}")


if __name__ == "__main__":
    main()
