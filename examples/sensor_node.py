#!/usr/bin/env python3
"""A self-powered wireless sensor node, scheduled by energy tokens.

The paper's motivating application domain is "systems that interface to
biological organisms" and wireless sensor networks, where "power constraints
are at the level of microwatts" and the supply is an energy harvester rather
than a battery.  This example builds such a node out of the library:

* a vibration harvester and power chain provide the energy budget;
* the SI SRAM stores samples (reads/writes run at whatever voltage the store
  supports);
* an energy-token scheduler decides, slot by slot, which of the node's tasks
  (sense, filter, log, transmit) the harvested quanta are spent on;
* the run is repeated under two scheduling policies to show how much more
  useful work the energy-aware policy extracts from the same environment.

Running experiments
-------------------
The policy comparison is the EXT1 benchmark's experiment
(``benchmarks/test_ext_energy_token_scheduling.py`` declares it as an
:class:`~repro.analysis.runner.ExperimentPlan` over
:func:`repro.core.scheduler.run_policy`, run through the benchmark
suite's shared :class:`~repro.analysis.session.Session`); this example
drives the same library calls interactively.  Run it from the
repository root with:

    PYTHONPATH=src python examples/sensor_node.py

(or ``pip install -e .`` once and drop the prefix).
"""

from repro import get_technology
from repro.analysis.report import format_table
from repro.core.scheduler import SchedulingPolicy, Task, compare_policies
from repro.power import PowerChain, VibrationHarvester
from repro.sim import Simulator
from repro.sram import SRAMConfig, SpeedIndependentSRAM

SLOT_SECONDS = 0.05
SLOTS = 120


def harvest_energy_profile(seed=11):
    """Advance a harvester chain slot by slot and log the delivered energy."""
    chain = PowerChain(
        harvester=VibrationHarvester(peak_power=60e-6, wander=0.25, seed=seed),
        storage_capacitance=47e-6,
        output_voltage=0.5,
        initial_store_voltage=1.0,
    )
    profile = []
    previous = 0.0
    for _ in range(SLOTS):
        chain.advance(SLOT_SECONDS)
        harvested = chain.harvester.energy_harvested
        profile.append(max(harvested - previous, 0.0) * 0.05)
        previous = harvested
    return chain, profile


def node_task_set():
    return [
        Task("sense", energy=5e-9, duration=1, value=1.0, periodic_every=6),
        Task("filter", energy=12e-9, duration=1, value=2.0,
             depends_on=("sense",)),
        Task("log_to_sram", energy=6e-9, duration=1, value=1.0,
             depends_on=("filter",)),
        Task("aggregate", energy=20e-9, duration=2, value=4.0,
             depends_on=("filter",)),
        Task("transmit", energy=80e-9, duration=2, value=12.0,
             depends_on=("aggregate",), deadline=SLOTS - 1),
    ]


def store_samples_in_sram(tech, sample_count):
    """Log the samples through the event-driven SI SRAM at a depleted rail."""
    from repro.power import ConstantSupply

    sram = SpeedIndependentSRAM(tech, SRAMConfig(rows=64, columns=16,
                                                 calibrate_energy=False))
    sim = Simulator()
    controller = sram.attach(sim, ConstantSupply(0.35))
    for i in range(sample_count):
        controller.write(i % 64, (0x5A5A + i) & 0xFFFF)
        sim.run()
    last = controller.last_record()
    return sram, last


def main():
    tech = get_technology("cmos90")
    chain, profile = harvest_energy_profile()
    print(f"Harvested {sum(profile):.3e} J of schedulable energy over "
          f"{SLOTS * SLOT_SECONDS:.0f} s "
          f"(store now at {chain.store.voltage(chain.time):.2f} V)\n")

    results = compare_policies(
        node_task_set(), profile, joules_per_token=1e-9,
        storage_capacity=200e-9,
        policies=[SchedulingPolicy.FIFO, SchedulingPolicy.EARLIEST_DEADLINE,
                  SchedulingPolicy.VALUE_PER_ENERGY])
    print(format_table(
        "Energy-token scheduling of the sensor-node workload",
        ["policy", "completed runs", "value", "value per nJ",
         "missed deadlines", "unfinished"],
        [[policy.value, len(result.runs), result.total_value,
          result.value_per_joule * 1e-9,
          len(result.missed_deadlines),
          " ".join(result.unfinished_tasks) or "-"]
         for policy, result in results.items()]))
    print()

    logged = sum(1 for run in results[SchedulingPolicy.VALUE_PER_ENERGY].runs
                 if run.task == "log_to_sram")
    samples = max(logged * 8, 8)
    sram, last_write = store_samples_in_sram(tech, samples)
    print(f"Logged {samples} samples into the SI SRAM at a 0.35 V rail; "
          f"the last write took {last_write.latency:.3e} s and "
          f"{last_write.energy:.3e} J "
          f"({sram.stored_words()} words now held).")


if __name__ == "__main__":
    main()
