#!/usr/bin/env python3
"""Comparing the three on-chip voltage-sensing styles of the paper.

Section III-B/III-C argues that a power-adaptive system needs "timely and
accurate metering of resources ... preferably avoiding complex A-to-D
converter schemes", and offers two self-timed alternatives to the classic
ring-oscillator sensor:

* the **ring oscillator** baseline [6] — needs an accurate time reference;
* the **charge-to-digital converter** (Figs. 8-11) — converts a sampled
  quantum of charge directly into a count;
* the **reference-free race sensor** (Fig. 12) — an SRAM cell racing an
  inverter-chain ruler, needing no reference at all.

The example calibrates all three against the same 90 nm process, then
measures a set of unknown voltages and prints the accuracy and energy cost of
each style side by side.

Running experiments
-------------------
The per-point sensor evaluations used here
(:func:`repro.sensors.charge_to_digital.conversion_metrics`,
:func:`repro.sensors.reference_free.race_metrics`) are the same functions
the Fig. 9/11/12 benchmarks sweep through declared
:class:`~repro.analysis.runner.ExperimentPlan` grids on the shared
:class:`~repro.analysis.session.Session` (see ``python -m repro run``
for the command-line equivalent).  Run it from the repository root
with:

    PYTHONPATH=src python examples/voltage_sensing.py

(or ``pip install -e .`` once and drop the prefix).
"""

from repro import get_technology
from repro.analysis.report import format_table
from repro.power import ConstantSupply
from repro.sensors import (
    ChargeToDigitalConverter,
    ReferenceFreeVoltageSensor,
    RingOscillatorSensor,
)

CALIBRATION_GRID = [0.20 + 0.02 * i for i in range(41)]
UNKNOWN_VOLTAGES = [0.27, 0.42, 0.58, 0.73, 0.91]


def main():
    tech = get_technology("cmos90")

    ring = RingOscillatorSensor(technology=tech, reference_error=0.02)
    ring.calibrate(CALIBRATION_GRID)

    charge = ChargeToDigitalConverter(technology=tech,
                                      sampling_capacitance=30e-12)
    charge.calibrate(CALIBRATION_GRID)

    race = ReferenceFreeVoltageSensor(technology=tech)
    race.calibrate(CALIBRATION_GRID)

    rows = []
    for vdd in UNKNOWN_VOLTAGES:
        ring_measurement = ring.measure(vdd)
        charge_measurement = charge.measure(ConstantSupply(vdd),
                                            use_simulation=False)
        race_measurement = race.measure(vdd)
        rows.append([vdd, ring_measurement, charge_measurement,
                     race_measurement])
    print(format_table(
        "Measured voltage by sensing style (true value in column 1)",
        ["true V", "ring oscillator (2% ref error)", "charge-to-digital",
         "reference-free race"],
        rows, unit_hints=["V", "V", "V", "V"]))
    print()

    def worst_error(measure):
        return max(abs(measure(v) - v) for v in UNKNOWN_VOLTAGES)

    summary = [
        ["ring oscillator [6]", worst_error(ring.measure),
         ring.energy_per_measurement(0.5), "time reference"],
        ["charge-to-digital (Figs. 8-11)",
         worst_error(lambda v: charge.measure(ConstantSupply(v),
                                              use_simulation=False)),
         charge.energy_per_conversion(0.5), "sampling switch only"],
        ["reference-free race (Fig. 12)", worst_error(race.measure),
         race.energy_per_measurement(0.5), "none"],
    ]
    print(format_table(
        "Accuracy, energy and reference requirements",
        ["sensor", "worst error", "energy per measurement", "reference needed"],
        summary, unit_hints=["", "V", "J", ""]))


if __name__ == "__main__":
    main()
