"""End-to-end smoke of the experiment service over a real subprocess.

What the CI ``service`` job runs: start ``python -m repro serve start``
as a real server process, drive it with two tenants submitting
concurrently through :class:`~repro.analysis.serve.client.ServiceClient`,
and assert the subsystem's three invariants from outside the process
boundary:

1. **Fair interleaving** — while a slow head plan pins the single
   dispatcher, a burst tenant piles up 20 plans and a steady tenant 6;
   under the VTC scheduler the steady tenant's completions land *among*
   the burst tenant's, never behind all of them.
2. **Byte-identical results** — every value served over the wire equals
   a direct ``Session.run`` of the same plan factory, float for float.
3. **Overload round (pinned seed)** — against a second server with a
   tiny queue watermark, admissions past the watermark get 429 with a
   positive retry hint, every admitted plan still completes, and the
   gate reopens once the queue drains.

Usage::

    python scripts/service_smoke.py          # PYTHONPATH=src from repo root
"""

import subprocess
import sys
import threading

from repro.analysis.serve import demo_plan, steady_plan
from repro.analysis.serve.client import ServiceClient, ServiceOverloaded
from repro.analysis.session import RunConfig, Session

#: The slow head plan (0.05 s of sleep per point) that keeps the single
#: dispatcher busy while both tenants stage their backlogs.
HEAD_SPEC = "repro.analysis.distrib:selftest_plan"
BURST_SPEC = "repro.analysis.serve:demo_plan"
STEADY_SPEC = "repro.analysis.serve:steady_plan"
BURST_N, STEADY_N = 20, 6

_FAILURES = 0


def check(label: str, ok: bool) -> None:
    global _FAILURES
    print(f"  [{'ok' if ok else 'FAIL'}] {label}", flush=True)
    if not ok:
        _FAILURES += 1


def start_server(*extra_args: str) -> "tuple[subprocess.Popen, str]":
    """Spawn ``repro serve start`` and parse the URL it announces."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "start", "--port", "0",
         "--dispatchers", "1", "--scheduler", "vtc", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = proc.stdout.readline()
    if "experiment service on " not in line:
        proc.terminate()
        raise RuntimeError(f"server failed to announce itself: {line!r}")
    url = line.split("experiment service on ", 1)[1].split()[0]
    return proc, url


def fairness_and_identity_round(url: str) -> None:
    print(f"two-tenant round against {url}", flush=True)
    head = ServiceClient(url)
    head_id = head.submit_plan(HEAD_SPEC, tenant="burst")["id"]

    burst_ids: "list[str]" = []
    steady_ids: "list[str]" = []

    def burst_tenant() -> None:
        with ServiceClient(url) as client:
            burst_ids.extend(client.submit_plan(BURST_SPEC,
                                                tenant="burst")["id"]
                             for _ in range(BURST_N))

    def steady_tenant() -> None:
        with ServiceClient(url) as client:
            steady_ids.extend(client.submit_plan(STEADY_SPEC,
                                                 tenant="steady")["id"]
                              for _ in range(STEADY_N))

    threads = [threading.Thread(target=burst_tenant),
               threading.Thread(target=steady_tenant)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    check("both tenants submitted concurrently over the wire",
          len(burst_ids) == BURST_N and len(steady_ids) == STEADY_N)

    records = {pid: head.wait(pid, timeout_s=300)
               for pid in [head_id] + burst_ids + steady_ids}
    check("every admitted plan completed",
          all(record["state"] == "done" for record in records.values()))

    burst_seqs = sorted(records[pid]["completed_seq"] for pid in burst_ids)
    steady_seqs = sorted(records[pid]["completed_seq"]
                         for pid in steady_ids)
    # The head plan ran first; the steady tenant's 6 cheap plans must
    # then finish among the burst tenant's 20, not after them — and
    # well inside the first half of the drain.
    check("steady tenant interleaved with the burst (no starvation)",
          burst_seqs[0] < steady_seqs[-1] < burst_seqs[-1]
          and steady_seqs[-1] <= (BURST_N + STEADY_N) // 2 + 2)

    status = head.status()
    virtual = status["scheduler"]["virtual_time"]
    check("virtual-time counters charged both tenants",
          virtual.get("burst", 0) > virtual.get("steady", 0) > 0)

    config = RunConfig.resolve()
    with Session(config) as session:
        expect_burst = session.run(*demo_plan()).values
        expect_steady = session.run(*steady_plan()).values
    sampled = burst_ids[:2] + burst_ids[-2:]
    check("burst results byte-identical to direct Session.run",
          all(head.result(pid)["values"] == expect_burst
              for pid in sampled))
    check("steady results byte-identical to direct Session.run",
          all(head.result(pid)["values"] == expect_steady
              for pid in steady_ids))


def overload_round(url: str) -> None:
    print(f"overload round against {url}", flush=True)
    client = ServiceClient(url)
    # The head plan is popped to the dispatcher immediately (so it never
    # counts against the queue watermark); the next three fill the tiny
    # queue while it sleeps.
    admitted = [client.submit_plan(HEAD_SPEC, tenant="burst")["id"]]
    admitted += [client.submit_plan(BURST_SPEC, tenant="burst")["id"]
                 for _ in range(3)]
    refused = None
    try:
        client.submit_plan(BURST_SPEC, tenant="burst")
    except ServiceOverloaded as exc:
        refused = exc
    check("past the watermark, admission is refused with a retry hint",
          refused is not None and refused.retry_after_s > 0)

    finished = [client.wait(pid, timeout_s=300) for pid in admitted]
    check("every admitted plan completed despite the overload",
          all(record["state"] == "done" for record in finished))

    reopened = client.submit_plan(BURST_SPEC, tenant="burst")
    check("the gate reopened once the queue drained",
          client.wait(reopened["id"], timeout_s=60)["state"] == "done")
    check("the refusal landed in the admission counters",
          client.status()["admission"]["rejected"] >= 1)


def main() -> int:
    print("service smoke", flush=True)
    servers = []
    try:
        proc, url = start_server("--max-queue-depth", "256")
        servers.append(proc)
        fairness_and_identity_round(url)

        overload_proc, overload_url = start_server("--max-queue-depth", "3")
        servers.append(overload_proc)
        overload_round(overload_url)
    finally:
        for proc in servers:
            proc.terminate()
        for proc in servers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    print("service smoke:", "PASS" if _FAILURES == 0
          else f"{_FAILURES} FAILURES", flush=True)
    return 0 if _FAILURES == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
