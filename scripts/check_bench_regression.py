"""The CI perf-regression gate over the committed trajectory.

Compares every benchmark in a fresh pytest-benchmark JSON snapshot
against its trailing-median baseline in the tracked
``BENCH_history.jsonl`` and exits non-zero when any benchmark is more
than 20% slower (``--threshold`` to tune).  A benchmark with no history
is reported but never fails — new benchmarks enter the trajectory by
being appended, not by being gated.

Deliberate recalibrations use the escape hatch (mirroring the
golden-figure policy: slowdowns must be *chosen*, never silent)::

    python scripts/check_bench_regression.py BENCH_ci.json \\
        --allow test_fig03_power_adaptive_loop

Thin wrapper over ``python -m repro obs check`` (see
``repro.analysis.obs.trajectory`` and ``docs/observability.md`` for the
full policy).
"""

import sys
from pathlib import Path

# Runnable from the repo root without an installed package: the source
# tree sits next to scripts/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.obs.trajectory import main_check  # noqa: E402

if __name__ == "__main__":
    sys.exit(main_check())
