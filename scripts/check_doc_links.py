"""Link checker for the repo docs: every relative link must resolve.

Scans Markdown files (by default ``README.md`` and everything under
``docs/``) for inline links and checks, with nothing beyond the
standard library:

* **relative file links** (``[text](docs/observability.md)``,
  ``[text](../README.md)``) point at files that exist in the checkout;
* **anchor links** (``#section``, ``file.md#section``) name a heading
  that actually slugifies to that anchor (GitHub slug rules: lowercase,
  punctuation stripped, spaces to hyphens, duplicates numbered);
* absolute ``http(s)://`` / ``mailto:`` links are skipped — CI must not
  fail on someone else's outage.

Fenced code blocks are ignored, so shell snippets that merely *look*
like links cannot fail the build.  Exit status 1 when any link is
broken; run by the CI ``docs`` job next to the figure→benchmark
freshness test.

Usage::

    python scripts/check_doc_links.py [FILES...]
"""

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown link: [text](target) — target split off any title.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _strip_fences(text: str) -> str:
    """Blank out fenced code blocks (keep line count for messages)."""
    out: List[str] = []
    fenced = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            out.append("")
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """One heading's anchor, GitHub-style, numbering duplicates."""
    text = heading.strip().lower()
    text = re.sub(r"`([^`]*)`", r"\1", text)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[^\w\- ]", "", text)
    # Each space becomes a hyphen (GitHub does not collapse runs, which
    # is how "a & b" slugs to "a--b").
    slug = text.strip().replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path) -> List[str]:
    seen: Dict[str, int] = {}
    anchors = []
    for line in _strip_fences(path.read_text(encoding="utf-8")).splitlines():
        match = HEADING_RE.match(line)
        if match:
            anchors.append(github_slug(match.group(2), seen))
    return anchors


def check_file(path: Path) -> List[str]:
    """All broken-link messages for one Markdown file."""
    problems = []
    text = _strip_fences(path.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(text):
        if target.startswith(SKIP_PREFIXES) or target.startswith("<"):
            continue
        target, _, anchor = target.partition("#")
        if target:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path.resolve()
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                problems.append(f"{path}: broken anchor -> "
                                f"{target or path.name}#{anchor}")
    return problems


def default_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="Markdown files (default: README.md + docs/)")
    args = parser.parse_args(argv)
    files: Iterable[Path] = args.files or default_files()
    problems: List[str] = []
    checked: List[Tuple[Path, int]] = []
    for path in files:
        broken = check_file(path)
        problems.extend(broken)
        checked.append((path, len(broken)))
    for path, broken in checked:
        print(f"{'FAIL' if broken else 'ok  '} {path} "
              f"({broken} broken)" if broken else f"ok   {path}")
    for problem in problems:
        print(problem)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
