"""Enforce the batched-execution speedup floor from a benchmark JSON.

Reads a pytest-benchmark JSON file (the CI ``BENCH_ci.json`` artifact),
finds the Monte-Carlo batched-vs-per-point benchmarks by name, prints the
``speedup_vs_per_point`` each one recorded in its ``extra_info``, and
fails if any is missing or below the floor (default 10x).

Usage::

    python scripts/check_batched_speedup.py BENCH_ci.json [--min-speedup 10]
"""

import argparse
import json
import sys

#: Benchmarks that must record a batched-vs-per-point speedup.
REQUIRED = (
    "test_fig07_write_latency_mc_batched_speedup",
    "test_fig09_predicted_count_mc_batched_speedup",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("json_path", help="pytest-benchmark JSON file")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="minimum acceptable batched-vs-per-point "
                             "speedup factor (default: 10)")
    args = parser.parse_args(argv)

    with open(args.json_path, encoding="utf-8") as handle:
        report = json.load(handle)

    by_name = {}
    for bench in report.get("benchmarks", []):
        speedup = bench.get("extra_info", {}).get("speedup_vs_per_point")
        if speedup is not None:
            by_name[bench["name"]] = float(speedup)

    failures = 0
    for name in REQUIRED:
        speedup = by_name.get(name)
        if speedup is None:
            print(f"MISSING  {name}: no speedup_vs_per_point recorded")
            failures += 1
        elif speedup < args.min_speedup:
            print(f"FAIL     {name}: {speedup:.1f}x "
                  f"< {args.min_speedup:.1f}x floor")
            failures += 1
        else:
            print(f"ok       {name}: {speedup:.1f}x")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
