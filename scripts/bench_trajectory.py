"""Append a pytest-benchmark snapshot to the committed perf trajectory.

Ingests a pytest-benchmark JSON file (the CI ``BENCH_ci.json``
artifact): one ``BENCH_history.jsonl`` line per benchmark, carrying the
median wall time, the ``extra_info`` (batched speedups, service
overheads), the git SHA and the run date.  The committed history is
what ``scripts/check_bench_regression.py`` gates against and what the
dashboard's trajectory sparklines plot.

Usage::

    PYTHONPATH=src python -m pytest benchmarks -q --runner-cache off \\
        --benchmark-json BENCH_ci.json
    python scripts/bench_trajectory.py BENCH_ci.json
    git add BENCH_history.jsonl   # the trajectory is a tracked file

Thin wrapper over ``python -m repro obs append`` (see
``repro.analysis.obs.trajectory`` and ``docs/observability.md``).
"""

import sys
from pathlib import Path

# Runnable from the repo root without an installed package: the source
# tree sits next to scripts/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.obs.trajectory import main_append  # noqa: E402

if __name__ == "__main__":
    sys.exit(main_append())
