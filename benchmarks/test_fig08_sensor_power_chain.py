"""FIG8 — Voltage sensor in an energy-harvesting power chain.

Fig. 8 places the charge-to-digital voltage sensor inside the EH power chain:
the sensor samples the DC-DC output onto its capacitor, converts the charge
into a code, and the code drives the controller that programs the converter.
The benchmark closes exactly that loop: for a series of regulated set-points
the sensor measures the live rail, and the measurement must track the
set-point closely enough to drive regulation (a few tens of millivolts) while
drawing only a negligible charge from the chain.

The set-point series is declared as an :class:`ExperimentPlan` sweep; each
point builds a fresh chain regulated to that set-point and meters it through
:func:`repro.sensors.charge_to_digital.meter_rail`.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.power.harvester import VibrationHarvester
from repro.power.power_chain import PowerChain
from repro.sensors.charge_to_digital import ChargeToDigitalConverter, meter_rail

from conftest import emit

SET_POINTS = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
CALIBRATION_GRID = [0.3 + 0.05 * i for i in range(16)]


def make_chain(target):
    return PowerChain(
        harvester=VibrationHarvester(peak_power=300e-6, wander=0.0, seed=0),
        storage_capacitance=100e-6, output_voltage=target,
        initial_store_voltage=2.0)


def build_figure(tech, executor):
    sensor = ChargeToDigitalConverter(technology=tech,
                                      sampling_capacitance=30e-12)
    sensor.calibrate(CALIBRATION_GRID)
    # One fresh chain (and one conversion) per set-point, memoised so the
    # four quantities of a point share a single metering.
    measurements = {}

    def metered(target):
        if target not in measurements:
            measurements[target] = meter_rail(sensor, make_chain(target))
        return measurements[target]

    plan = ExperimentPlan.sweep("set_point", SET_POINTS)
    result = executor.run(plan, {
        "code": lambda t: float(metered(t).code),
        "measured": lambda t: metered(t).measured_voltage,
        "error": lambda t: abs(metered(t).measured_voltage - t),
        "store_energy_taken": lambda t: metered(t).store_energy_taken,
    })
    return result


def test_fig08_voltage_sensor_in_the_power_chain(tech, benchmark, executor):
    result = benchmark(build_figure, tech, executor)

    rows = [[target,
             int(result.series("code").value_at(target)),
             result.series("measured").value_at(target),
             result.series("error").value_at(target),
             result.series("store_energy_taken").value_at(target)]
            for target in SET_POINTS]
    emit(format_table(
        "FIG8 — charge-to-digital sensor metering the regulated rail",
        ["rail set-point", "code", "measured", "error",
         "energy taken from chain"],
        rows, unit_hints=["V", "", "V", "V", "J"]))

    errors = result.series("error").ys
    sampling_costs = result.series("store_energy_taken").ys
    codes = result.series("code").ys
    # Measurement tracks the set-point well enough to close the control loop.
    assert max(errors) < 0.05
    # The code grows with the rail voltage (it is the feedback signal).
    assert all(b > a for a, b in zip(codes, codes[1:]))
    # Metering is energy-frugal: each sample takes nanojoules or less from a
    # store holding hundreds of microjoules.
    assert max(sampling_costs) < 1e-9
