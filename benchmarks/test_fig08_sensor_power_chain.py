"""FIG8 — Voltage sensor in an energy-harvesting power chain.

Fig. 8 places the charge-to-digital voltage sensor inside the EH power chain:
the sensor samples the DC-DC output onto its capacitor, converts the charge
into a code, and the code drives the controller that programs the converter.
The benchmark closes exactly that loop: for a series of regulated set-points
the sensor measures the live rail, and the measurement must track the
set-point closely enough to drive regulation (a few tens of millivolts) while
drawing only a negligible charge from the chain.
"""

from repro.analysis.report import format_table
from repro.power.harvester import VibrationHarvester
from repro.power.power_chain import PowerChain
from repro.sensors.charge_to_digital import ChargeToDigitalConverter

from conftest import emit

SET_POINTS = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def run_loop(tech):
    sensor = ChargeToDigitalConverter(technology=tech,
                                      sampling_capacitance=30e-12)
    sensor.calibrate([0.3 + 0.05 * i for i in range(16)])
    rows = []
    for target in SET_POINTS:
        chain = PowerChain(
            harvester=VibrationHarvester(peak_power=300e-6, wander=0.0, seed=0),
            storage_capacitance=100e-6, output_voltage=target,
            initial_store_voltage=2.0)
        store_before = chain.store.stored_energy(0.0)
        result = sensor.convert(chain.output_rail)
        measured = sensor.calibration.voltage_for_code(float(result.count))
        store_after = chain.store.stored_energy(0.0)
        rows.append([target, result.count, measured,
                     abs(measured - target), store_before - store_after])
    return rows


def test_fig08_voltage_sensor_in_the_power_chain(tech, benchmark):
    rows = benchmark(run_loop, tech)

    emit(format_table(
        "FIG8 — charge-to-digital sensor metering the regulated rail",
        ["rail set-point", "code", "measured", "error", "energy taken from chain"],
        rows, unit_hints=["V", "", "V", "V", "J"]))

    errors = [row[3] for row in rows]
    sampling_costs = [row[4] for row in rows]
    codes = [row[1] for row in rows]
    # Measurement tracks the set-point well enough to close the control loop.
    assert max(errors) < 0.05
    # The code grows with the rail voltage (it is the feedback signal).
    assert all(b > a for a, b in zip(codes, codes[1:]))
    # Metering is energy-frugal: each sample takes nanojoules or less from a
    # store holding hundreds of microjoules.
    assert max(sampling_costs) < 1e-9
