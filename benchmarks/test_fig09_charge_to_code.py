"""FIG9/FIG10 — Self-timed counter as a charge-to-code converter.

Figs. 9 and 10 show the converter's structure: a sampling capacitor feeding a
ripple chain of toggle flip-flops (Fig. 10's element) whose LSB runs in
oscillator mode.  "Each logic gate fires strictly in sequence, without any
hazards, and therefore there is a strong proportionality between the amount
of charge taken from the capacitor and the number of transitions and, hence,
counts performed by the counter."  The benchmark runs the event-driven
converter and verifies exactly that proportionality: charge consumed per
count stays (nearly) constant across input voltages, the counter stops by
itself when the capacitor collapses, and the conversion's energy comes from
the sampled charge, not from the measured node.

The input-voltage series is declared as an :class:`ExperimentPlan` sweep;
each point is one event-driven conversion through
:func:`repro.sensors.charge_to_digital.conversion_metrics`.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.sensors.charge_to_digital import (
    CONVERSION_METRICS,
    ChargeToDigitalConverter,
    conversion_metrics,
)

from conftest import emit

INPUT_VOLTAGES = [0.4, 0.6, 0.8, 1.0]


def build_figure(tech, executor):
    converter = ChargeToDigitalConverter(technology=tech,
                                         sampling_capacitance=30e-12)
    # One event-driven conversion per sampled voltage, memoised so the five
    # quantities of a point share a single simulation.
    conversions = {}

    def converted(voltage):
        if voltage not in conversions:
            conversions[voltage] = conversion_metrics(converter, voltage)
        return conversions[voltage]

    plan = ExperimentPlan.sweep("sampled_vdd", INPUT_VOLTAGES)
    quantities = {
        metric: (lambda v, metric=metric: converted(v)[metric])
        for metric in CONVERSION_METRICS
    }
    result = executor.run(plan, quantities)
    return converter, result


def test_fig09_charge_to_code_conversion(tech, benchmark, executor):
    converter, result = benchmark(build_figure, tech, executor)

    rows = [[voltage,
             int(result.series("count").value_at(voltage)),
             result.series("charge_consumed").value_at(voltage),
             result.series("charge_per_count").value_at(voltage),
             result.series("conversion_time").value_at(voltage),
             result.series("final_voltage").value_at(voltage)]
            for voltage in INPUT_VOLTAGES]
    emit(format_table(
        "FIG9 — conversions of a 30 pF sampled charge",
        ["sampled V", "count", "charge consumed", "charge per count",
         "conversion time", "final V"],
        rows, unit_hints=["V", "", "C", "C", "s", "V"]))

    counts = result.series("count").ys
    charges = result.series("charge_consumed").ys
    per_count = result.series("charge_per_count").ys
    times = result.series("conversion_time").ys

    # Strong charge-to-count proportionality: the charge cost of one count
    # stays within a factor of two across a 2.5x range of sampled charge
    # (the residual variation is the expected C·V² vs C·V effect — pulses
    # taken at higher instantaneous voltage cost proportionally more charge).
    assert max(per_count) / min(per_count) < 2.0
    # More sampled charge means more counts and more charge drained; the
    # conversion time is dominated by the final low-voltage pulses and is of
    # the same order for every input.
    assert counts == sorted(counts)
    assert charges == sorted(charges)
    assert max(times) / min(times) < 3.0
    # The conversion self-terminates with the capacitor near the stop voltage.
    for voltage in INPUT_VOLTAGES:
        final_voltage = result.series("final_voltage").value_at(voltage)
        count = result.series("count").value_at(voltage)
        assert final_voltage <= converter.stop_voltage * 1.5
        assert count < (1 << converter.counter_width)
    # The closed-form prediction tracks the event-driven reference.
    for voltage, count in zip(INPUT_VOLTAGES, counts):
        assert abs(converter.predicted_count(voltage) - count) \
            <= 0.25 * count + 2
