"""FIG9/FIG10 — Self-timed counter as a charge-to-code converter.

Figs. 9 and 10 show the converter's structure: a sampling capacitor feeding a
ripple chain of toggle flip-flops (Fig. 10's element) whose LSB runs in
oscillator mode.  "Each logic gate fires strictly in sequence, without any
hazards, and therefore there is a strong proportionality between the amount
of charge taken from the capacitor and the number of transitions and, hence,
counts performed by the counter."  The benchmark runs the event-driven
converter and verifies exactly that proportionality: charge consumed per
count stays (nearly) constant across input voltages, the counter stops by
itself when the capacitor collapses, and the conversion's energy comes from
the sampled charge, not from the measured node.
"""

from repro.analysis.report import format_table
from repro.power.supply import ConstantSupply
from repro.sensors.charge_to_digital import ChargeToDigitalConverter

from conftest import emit

INPUT_VOLTAGES = [0.4, 0.6, 0.8, 1.0]


def run_conversions(tech):
    converter = ChargeToDigitalConverter(technology=tech,
                                         sampling_capacitance=30e-12)
    results = [(v, converter.convert(ConstantSupply(v))) for v in INPUT_VOLTAGES]
    return converter, results


def test_fig09_charge_to_code_conversion(tech, benchmark):
    converter, results = benchmark(run_conversions, tech)

    rows = []
    for voltage, result in results:
        rows.append([voltage, result.count, result.charge_consumed,
                     result.charge_per_count, result.conversion_time,
                     result.final_voltage])
    emit(format_table(
        "FIG9 — conversions of a 30 pF sampled charge",
        ["sampled V", "count", "charge consumed", "charge per count",
         "conversion time", "final V"],
        rows, unit_hints=["V", "", "C", "C", "s", "V"]))

    counts = [result.count for _, result in results]
    charges = [result.charge_consumed for _, result in results]
    per_count = [result.charge_per_count for _, result in results]
    times = [result.conversion_time for _, result in results]

    # Strong charge-to-count proportionality: the charge cost of one count
    # stays within a factor of two across a 2.5x range of sampled charge
    # (the residual variation is the expected C·V² vs C·V effect — pulses
    # taken at higher instantaneous voltage cost proportionally more charge).
    assert max(per_count) / min(per_count) < 2.0
    # More sampled charge means more counts and more charge drained; the
    # conversion time is dominated by the final low-voltage pulses and is of
    # the same order for every input.
    assert counts == sorted(counts)
    assert charges == sorted(charges)
    assert max(times) / min(times) < 3.0
    # The conversion self-terminates with the capacitor near the stop voltage.
    for _, result in results:
        assert result.final_voltage <= converter.stop_voltage * 1.5
        assert result.count < (1 << converter.counter_width)
    # The closed-form prediction tracks the event-driven reference.
    for voltage, result in results:
        assert abs(converter.predicted_count(voltage) - result.count) \
            <= 0.25 * result.count + 2
