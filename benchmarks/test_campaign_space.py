"""The declarative campaign engine over the paper's figure space.

Two shapes are pinned here.  First, one TOML file really does enumerate
the evaluation: the bundled ``paper_space`` campaign compiles to the
full >= 5000-point cross-product of every registry point function over
the three technologies, and its signature — the content identity of the
whole execution set — is stable across recompiles.  Second, executing
the smoke-trimmed campaign through the shared Session front door covers
every scenario's code path and stays bit-identical between the
configured executor and the deterministic serial reference, which is the
property that makes ``python -m repro campaign run`` shardable and
cacheable for free.
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.session import RunConfig, Session

from conftest import emit

pytest.importorskip("tomllib")


def _load_full():
    from repro.analysis.campaign import compile_campaign, load_campaign
    from repro.analysis.campaign.spec import builtin_campaign_path

    return compile_campaign(load_campaign(builtin_campaign_path()))


def test_paper_space_geometry(benchmark):
    """Compiling the full campaign is cheap and its space is the paper's."""
    campaign = benchmark(_load_full)
    payload = campaign.describe()
    emit(format_table(
        "paper_space campaign geometry",
        ["scenario", "points"],
        sorted([[name, points] for name, points
                in payload["scenario_points"].items()])
        + [["total", payload["points"]]]))
    assert payload["points"] >= 5000
    assert payload["signature"] == _load_full().signature()


def test_campaign_smoke_executes_every_scenario(smoke_campaign, run_session,
                                                benchmark):
    """The smoke campaign runs in seconds and misses no scenario."""
    from repro.analysis.campaign import run_campaign

    result = benchmark.pedantic(
        lambda: run_campaign(smoke_campaign, run_session),
        rounds=1, iterations=1)
    summary = result.summary()
    emit(format_table(
        "smoke campaign execution",
        ["runs", "points", "wall s", "executors"],
        [[summary["runs"], summary["evaluated_points"],
          f"{summary['wall_time_s']:.2f}",
          ", ".join(summary["executors"])]]))
    assert summary["evaluated_points"] == smoke_campaign.point_count
    covered = {run.scenario_index for run in smoke_campaign.runs}
    assert covered == set(range(len(smoke_campaign.spec.scenarios)))


def test_campaign_matches_serial_reference(smoke_campaign, run_session):
    """Whatever the harness was configured with equals the serial path."""
    from repro.analysis.campaign import run_campaign

    configured = run_campaign(smoke_campaign, run_session)
    with Session(RunConfig.resolve(config_file=False)) as reference:
        serial = run_campaign(smoke_campaign, reference)
    assert configured.values() == serial.values()
