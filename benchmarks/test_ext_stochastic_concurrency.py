"""EXT2 — Stochastic analysis of power, latency and the degree of concurrency.

Reference [12] (cited in the conclusion as part of the energy-modulated
toolbox) analyses how the degree of concurrency trades latency against power.
The benchmark sweeps an M/M/c model of a multi-core load, prints the
latency/power/energy table, validates the closed forms against a Monte-Carlo
simulation, and checks the qualitative shape: latency falls and power rises
with concurrency, so the power-latency product has an interior optimum —
which is the operating point a power-adaptive scheduler would pick.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.stochastic import ConcurrencyAnalysis, PowerLatencyModel, simulate_mmc

from conftest import emit

ARRIVAL_RATE = 120.0     # jobs per second offered by the application
SERVICE_RATE = 25.0      # jobs per second per core at the chosen Vdd
STATIC_POWER = 2e-6      # watts per powered-on core
DYNAMIC_POWER = 20e-6    # additional watts per busy core
MAX_SERVERS = 16


def analyse(_tech):
    model = PowerLatencyModel(arrival_rate=ARRIVAL_RATE,
                              service_rate=SERVICE_RATE,
                              static_power_per_server=STATIC_POWER,
                              dynamic_power_per_server=DYNAMIC_POWER)
    analysis = ConcurrencyAnalysis(model, max_servers=MAX_SERVERS)
    return model, analysis, analysis.sweep()


def test_ext2_stochastic_concurrency_tradeoff(tech, benchmark):
    model, analysis, points = benchmark(analyse, tech)

    emit(format_table(
        "EXT2 — degree of concurrency vs latency and power (M/M/c)",
        ["cores", "utilisation", "mean latency", "queue length", "power",
         "power x latency"],
        [[p.servers, p.utilisation, p.mean_latency, p.mean_queue_length,
          p.power, p.power_latency_product] for p in points],
        unit_hints=["", "", "s", "", "W", "J"]))

    balanced = analysis.balanced_optimal()
    fastest = analysis.latency_optimal()
    empirical = simulate_mmc(model, balanced.servers, jobs=4000, seed=7)
    emit(format_table(
        "EXT2 — chosen operating points",
        ["point", "cores", "mean latency", "power"],
        [["latency-optimal", fastest.servers, fastest.mean_latency, fastest.power],
         ["power-latency optimal", balanced.servers, balanced.mean_latency,
          balanced.power],
         ["Monte-Carlo check of the balanced point", balanced.servers,
          empirical.mean_latency, empirical.power]],
        unit_hints=["", "", "s", "W"]))

    stable = [p for p in points if p.stable]
    # Latency is monotone non-increasing and power monotone increasing in c.
    latencies = [p.mean_latency for p in stable]
    powers = [p.power for p in stable]
    assert all(b <= a + 1e-12 for a, b in zip(latencies, latencies[1:]))
    assert all(b > a for a, b in zip(powers, powers[1:]))
    # The balanced optimum is interior: more concurrency than the bare
    # minimum, less than the latency-optimal maximum.
    assert model.minimum_servers() <= balanced.servers <= fastest.servers
    assert balanced.power <= fastest.power
    # The closed-form latency matches simulation within 20 %.
    assert empirical.mean_latency == pytest.approx(balanced.mean_latency, rel=0.2)
