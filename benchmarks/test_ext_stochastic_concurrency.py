"""EXT2 — Stochastic analysis of power, latency and the degree of concurrency.

Reference [12] (cited in the conclusion as part of the energy-modulated
toolbox) analyses how the degree of concurrency trades latency against power.
The benchmark sweeps an M/M/c model of a multi-core load — declared as an
:class:`ExperimentPlan` over the core count, each point evaluated by
:func:`repro.core.stochastic.operating_point_metrics` — prints the
latency/power/energy table, validates the closed forms against a Monte-Carlo
simulation, and checks the qualitative shape: latency falls and power rises
with concurrency, so the power-latency product has an interior optimum —
which is the operating point a power-adaptive scheduler would pick.
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.core.stochastic import (
    OPERATING_POINT_METRICS,
    ConcurrencyAnalysis,
    PowerLatencyModel,
    operating_point_metrics,
    simulate_mmc,
)

from conftest import emit

ARRIVAL_RATE = 120.0     # jobs per second offered by the application
SERVICE_RATE = 25.0      # jobs per second per core at the chosen Vdd
STATIC_POWER = 2e-6      # watts per powered-on core
DYNAMIC_POWER = 20e-6    # additional watts per busy core
MAX_SERVERS = 16
SERVER_COUNTS = list(range(1, MAX_SERVERS + 1))


def build_figure(tech, executor):
    model = PowerLatencyModel(arrival_rate=ARRIVAL_RATE,
                              service_rate=SERVICE_RATE,
                              static_power_per_server=STATIC_POWER,
                              dynamic_power_per_server=DYNAMIC_POWER)
    plan = ExperimentPlan.sweep("servers", SERVER_COUNTS)
    quantities = {
        metric: (lambda c, metric=metric:
                 operating_point_metrics(model, c)[metric])
        for metric in OPERATING_POINT_METRICS
    }
    result = executor.run(plan, quantities)
    return model, ConcurrencyAnalysis(model, max_servers=MAX_SERVERS), result


def test_ext2_stochastic_concurrency_tradeoff(tech, benchmark, executor):
    model, analysis, result = benchmark(build_figure, tech, executor)

    def at(metric, servers):
        return result.series(metric).value_at(servers)

    emit(format_table(
        "EXT2 — degree of concurrency vs latency and power (M/M/c)",
        ["cores", "utilisation", "mean latency", "queue length", "power",
         "power x latency"],
        [[c, at("utilisation", c), at("mean_latency", c),
          at("mean_queue_length", c), at("power", c),
          at("power_latency_product", c)] for c in SERVER_COUNTS],
        unit_hints=["", "", "s", "", "W", "J"]))

    balanced = analysis.balanced_optimal()
    fastest = analysis.latency_optimal()
    empirical = simulate_mmc(model, balanced.servers, jobs=4000, seed=7)
    emit(format_table(
        "EXT2 — chosen operating points",
        ["point", "cores", "mean latency", "power"],
        [["latency-optimal", fastest.servers, fastest.mean_latency,
          fastest.power],
         ["power-latency optimal", balanced.servers, balanced.mean_latency,
          balanced.power],
         ["Monte-Carlo check of the balanced point", balanced.servers,
          empirical.mean_latency, empirical.power]],
        unit_hints=["", "", "s", "W"]))

    stable = [c for c in SERVER_COUNTS if at("stable", c) > 0]
    # Latency is monotone non-increasing and power monotone increasing in c.
    latencies = [at("mean_latency", c) for c in stable]
    powers = [at("power", c) for c in stable]
    assert all(b <= a + 1e-12 for a, b in zip(latencies, latencies[1:]))
    assert all(b > a for a, b in zip(powers, powers[1:]))
    # The balanced optimum is interior: more concurrency than the bare
    # minimum, less than the latency-optimal maximum.
    assert model.minimum_servers() <= balanced.servers <= fastest.servers
    assert balanced.power <= fastest.power
    # The plan's per-point quantities agree with the analysis object.
    assert at("mean_latency", balanced.servers) == balanced.mean_latency
    # The closed-form latency matches simulation within 20 %.
    assert empirical.mean_latency == pytest.approx(balanced.mean_latency,
                                                   rel=0.2)
