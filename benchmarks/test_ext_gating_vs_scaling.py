"""EXT3 — Strategy 1 (power gating) versus strategy 2 (voltage scaling).

Section II-B: for a given quantum of scavenged energy the load can either
"switch on/off parts of the circuit under the constant (nominal) voltage"
(the AC-powered-filter approach of [4]) or "operate under the variable
voltage, but this requires much more robust circuits, such as classes of
self-timed (asynchronous) logic".  The benchmark sweeps the size of the
scavenged quantum — as an :class:`ExperimentPlan` with one quantity per
strategy — and reports how much computation each strategy extracts from it,
locating the crossover region that motivates the paper's power-adaptive
(hybrid) recommendation.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.core.design_styles import BundledDataDesign, SpeedIndependentDesign
from repro.core.gating import PowerGatedDesign, voltage_scaled_activity_per_quantum

from conftest import emit

#: Energy scavenged per gating/scheduling period, in joules.
QUANTA = [10e-12, 20e-12, 50e-12, 100e-12, 200e-12, 500e-12, 1e-9, 2e-9,
          5e-9, 10e-9]
PERIOD = 1e-4


def build_figure(tech, executor):
    gated = PowerGatedDesign(BundledDataDesign(tech), nominal_vdd=1.0)
    self_timed = SpeedIndependentDesign(tech)
    plan = ExperimentPlan.sweep("quantum", QUANTA)
    result = executor.run(plan, {
        "strategy1": lambda q: gated.activity_per_quantum(q, PERIOD),
        "strategy2": lambda q: voltage_scaled_activity_per_quantum(
            self_timed, q, PERIOD),
    })
    return result


def test_ext3_power_gating_vs_voltage_scaling(tech, benchmark, executor):
    result = benchmark(build_figure, tech, executor)
    strategy1 = result.series("strategy1").ys
    strategy2 = result.series("strategy2").ys

    emit(format_table(
        "EXT3 — operations per scavenged quantum (1 ms period)",
        ["energy quantum", "strategy 1: gate at 1 V", "strategy 2: scale Vdd",
         "strategy2 / strategy1"],
        [[quantum, s1, s2, (s2 / s1) if s1 > 0 else float("inf")]
         for quantum, s1, s2 in zip(QUANTA, strategy1, strategy2)],
        unit_hints=["J", "", "", ""]))

    # Both strategies produce more activity from bigger quanta.
    assert strategy1 == sorted(strategy1)
    assert strategy2 == sorted(strategy2)
    # For the smallest quanta the gated fabric is crippled by its wake-up and
    # sleep-leakage tax while the self-timed fabric already computes well —
    # the paper's case for robust-to-low-Vdd logic in EH systems.
    assert strategy2[0] > 3.0 * strategy1[0]
    # For generous quanta the nominal-voltage fabric is competitive (the
    # reason the paper recommends a hybrid rather than either extreme).
    assert strategy1[-1] > 0.25 * strategy2[-1]
    # The self-timed advantage shrinks monotonically in the quantum size:
    # the two strategies trade places in attractiveness as energy gets rich.
    ratios = [s2 / s1 if s1 > 0 else float("inf")
              for s1, s2 in zip(strategy1, strategy2)]
    assert ratios[0] > 2.0 * ratios[-1]
