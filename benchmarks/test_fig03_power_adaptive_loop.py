"""FIG3 — Power-adaptive computing (the holistic closed loop).

Fig. 3 is the block diagram of the holistic view: the harvester-fed power
chain on one side, the computational load on the other, and a two-way
adaptation loop between them.  The benchmark runs that loop — sense the
store, set the rail, admit load — against an unstable vibration harvester and
compares it with a non-adaptive baseline that insists on the nominal 1 V rail
regardless of how depleted the store is.  The adaptive system must extract
more useful operations from the same environment without ever browning out.

The comparison is declared as an :class:`ExperimentPlan` over the
``adaptive`` axis (0 = fixed 1 V rail, 1 = power-adaptive); each point runs
one seeded closed loop and the quantities are the scalar summaries of
:func:`repro.core.power_adaptive.loop_metrics`.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.core.power_adaptive import LOOP_METRICS, loop_metrics, run_fig3_loop

from conftest import emit

RUN_SECONDS = 2.0
#: Plan axis: 0 = fixed nominal-rail baseline, 1 = power-adaptive controller.
ADAPTIVE_AXIS = [0.0, 1.0]


def build_figure(tech, executor):
    # Each plan point is one seeded closed-loop run of the library's
    # reference scenario (shared with tests/test_golden_figures.py); the
    # controllers are memoised per point value so the five quantities
    # share a single run.
    controllers = {}

    def scenario(flag):
        key = bool(round(flag))
        if key not in controllers:
            controllers[key] = run_fig3_loop(tech, key,
                                             run_seconds=RUN_SECONDS)
        return controllers[key]

    plan = ExperimentPlan.sweep("adaptive", ADAPTIVE_AXIS)
    quantities = {
        metric: (lambda flag, metric=metric:
                 loop_metrics(scenario(flag))[metric])
        for metric in LOOP_METRICS
    }
    result = executor.run(plan, quantities)
    return scenario(1.0), scenario(0.0), result


def test_fig03_power_adaptive_loop(tech, benchmark, executor):
    adaptive, fixed, result = benchmark(build_figure, tech, executor)

    def row(name, flag):
        at = {metric: result.series(metric).value_at(flag)
              for metric in LOOP_METRICS}
        return [name,
                int(at["operations"]),
                at["energy_harvested"],
                at["energy_consumed"],
                at["average_rail_voltage"],
                at["min_stored_energy"]]

    emit(format_table(
        "FIG3 — closed-loop adaptation vs fixed-rail baseline "
        f"({RUN_SECONDS:.0f} s of unstable vibration harvesting)",
        ["controller", "operations", "harvested", "consumed by load",
         "avg rail", "min stored energy"],
        [row("power-adaptive", 1.0), row("fixed 1 V rail", 0.0)],
        unit_hints=["", "", "J", "J", "V", "J"]))

    duty = adaptive.duty_profile()
    emit(format_table(
        "FIG3 — adaptive controller duty profile (fraction of control steps)",
        ["active design style", "fraction"],
        [[name, fraction] for name, fraction in sorted(duty.items())]))

    # Shape assertions: adaptation converts the same environment into at
    # least as much work, and it exercises the low-voltage operating points.
    operations = result.series("operations")
    rail = result.series("average_rail_voltage")
    assert operations.value_at(1.0) > 0
    assert operations.value_at(1.0) >= operations.value_at(0.0)
    assert rail.value_at(1.0) < rail.value_at(0.0)
    assert result.series("min_stored_energy").value_at(1.0) >= 0.0
    # The plan's quantities agree with the controllers the tables detail.
    assert operations.value_at(1.0) == float(adaptive.operations_done)
    assert operations.value_at(0.0) == float(fixed.operations_done)
