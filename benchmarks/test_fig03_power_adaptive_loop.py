"""FIG3 — Power-adaptive computing (the holistic closed loop).

Fig. 3 is the block diagram of the holistic view: the harvester-fed power
chain on one side, the computational load on the other, and a two-way
adaptation loop between them.  The benchmark runs that loop — sense the
store, set the rail, admit load — against an unstable vibration harvester and
compares it with a non-adaptive baseline that insists on the nominal 1 V rail
regardless of how depleted the store is.  The adaptive system must extract
more useful operations from the same environment without ever browning out.
"""

from repro.analysis.report import format_table
from repro.core.design_styles import HybridDesign
from repro.core.power_adaptive import AdaptationPolicy, PowerAdaptiveController
from repro.power.harvester import VibrationHarvester
from repro.power.power_chain import PowerChain

from conftest import emit

RUN_SECONDS = 2.0
CONTROL_INTERVAL = 0.02


def make_chain(seed=21):
    harvester = VibrationHarvester(peak_power=80e-6, wander=0.15, seed=seed)
    return PowerChain(harvester=harvester, storage_capacitance=47e-6,
                      output_voltage=1.0, initial_store_voltage=1.3)


def run_loop(tech, adaptive):
    if adaptive:
        policy = AdaptationPolicy(store_low=0.8, store_high=2.0,
                                  vdd_floor=0.25, vdd_nominal=1.0,
                                  max_operations_per_step=50_000)
    else:
        # The "non-adaptive" baseline always asks for the nominal rail.
        policy = AdaptationPolicy(store_low=0.0001, store_high=0.0002,
                                  vdd_floor=0.999, vdd_nominal=1.0,
                                  max_operations_per_step=50_000)
    controller = PowerAdaptiveController(
        chain=make_chain(), design=HybridDesign(tech), policy=policy,
        step_interval=CONTROL_INTERVAL)
    controller.run(RUN_SECONDS)
    return controller


def test_fig03_power_adaptive_loop(tech, benchmark):
    adaptive = benchmark(run_loop, tech, True)
    fixed = run_loop(tech, False)

    def summarise(name, controller):
        report = controller.chain.report()
        trace = controller.trace()
        return [name,
                controller.operations_done,
                report.energy_harvested,
                controller.energy_consumed,
                controller.average_rail_voltage(),
                min(r.stored_energy for r in trace)]

    emit(format_table(
        "FIG3 — closed-loop adaptation vs fixed-rail baseline "
        f"({RUN_SECONDS:.0f} s of unstable vibration harvesting)",
        ["controller", "operations", "harvested", "consumed by load",
         "avg rail", "min stored energy"],
        [summarise("power-adaptive", adaptive),
         summarise("fixed 1 V rail", fixed)],
        unit_hints=["", "", "J", "J", "V", "J"]))

    duty = adaptive.duty_profile()
    emit(format_table(
        "FIG3 — adaptive controller duty profile (fraction of control steps)",
        ["active design style", "fraction"],
        [[name, fraction] for name, fraction in sorted(duty.items())]))

    # Shape assertions: adaptation converts the same environment into at
    # least as much work, and it exercises the low-voltage operating points.
    assert adaptive.operations_done > 0
    assert adaptive.operations_done >= fixed.operations_done
    assert adaptive.average_rail_voltage() < fixed.average_rail_voltage()
    assert min(r.stored_energy for r in adaptive.trace()) >= 0.0
