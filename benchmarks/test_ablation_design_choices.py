"""ABL — Ablations of the design choices DESIGN.md calls out.

Three knobs the paper discusses qualitatively are quantified here, each as
its own :class:`ExperimentPlan`:

* **Completion-detection segmentation** (Section III-A): "its low Vdd limit
  can be pushed further down in sub-threshold (below 0.3 V) by sectioning the
  completion detection in the column into smaller segments, say, of 8 bit
  each" — at the price of extra gates.  Evaluated per point by
  :func:`repro.sram.completion.segmentation_metrics` (segment size 0 encodes
  the unsegmented full column).
* **8T versus 6T cells**: "leakage power can be reduced by switching to 8T
  cells (with two NMOS transistors in stack)".  Evaluated per point by
  :func:`repro.sram.sram.cell_tradeoff_metrics`.
* **The hybrid's switch voltage**: where the power-adaptive design hands over
  between Design 1 and Design 2 determines how much of Design 2's efficiency
  it keeps.  Evaluated per point by
  :func:`repro.core.design_styles.hybrid_tradeoff_metrics`.
"""

from repro.analysis.runner import ExperimentPlan
from repro.analysis.report import format_table
from repro.core.design_styles import (
    HYBRID_TRADEOFF_METRICS,
    hybrid_tradeoff_metrics,
)
from repro.sram.cell import CellType
from repro.sram.completion import SEGMENTATION_METRICS, segmentation_metrics
from repro.sram.sram import cell_tradeoff_metrics

from conftest import emit

COLUMNS = 16
#: Segment sizes of the column completion detector; 0 = one full-column
#: detector (the plan axis cannot carry ``None``).
SEGMENT_SIZES = [0.0, 8.0, 4.0]
CELL_TYPES = (CellType.SIX_T, CellType.EIGHT_T)
SWITCH_VOLTAGES = [0.45, 0.6, 0.8]

CELL_METRICS = ("array_leakage", "write_energy", "area_factor")


def run_ablations(tech, executor):
    segmentation = executor.run(
        ExperimentPlan.sweep("segment_size", SEGMENT_SIZES),
        {metric: (lambda s, metric=metric:
                  segmentation_metrics(tech, COLUMNS, s)[metric])
         for metric in SEGMENTATION_METRICS})
    cells = executor.run(
        ExperimentPlan.sweep("cell_index", range(len(CELL_TYPES))),
        {metric: (lambda i, metric=metric: cell_tradeoff_metrics(
            tech, CELL_TYPES[int(round(i))])[metric])
         for metric in CELL_METRICS})
    hybrids = executor.run(
        ExperimentPlan.sweep("switch_voltage", SWITCH_VOLTAGES),
        {metric: (lambda v, metric=metric:
                  hybrid_tradeoff_metrics(tech, v)[metric])
         for metric in HYBRID_TRADEOFF_METRICS})
    return segmentation, cells, hybrids


def test_ablation_of_paper_design_choices(tech, benchmark, executor):
    segmentation, cells, hybrids = benchmark(run_ablations, tech, executor)

    def segment_label(size):
        return "full column" if size == 0 else f"{int(size)}-bit segments"

    emit(format_table(
        f"ABL1 — completion-detection segmentation ({COLUMNS}-column array)",
        ["column CD structure", "min detectable Vdd", "detection delay @0.3V",
         "gate count"],
        [[segment_label(size),
          segmentation.series("min_detectable_vdd").value_at(size),
          segmentation.series("detection_delay").value_at(size),
          int(segmentation.series("gate_count").value_at(size))]
         for size in SEGMENT_SIZES],
        unit_hints=["", "V", "s", ""]))
    emit(format_table(
        "ABL2 — 6T vs 8T cells (1-kbit array)",
        ["cell", "array leakage @1V", "write energy @0.4V", "relative area"],
        [[cell.value,
          cells.series("array_leakage").value_at(i),
          cells.series("write_energy").value_at(i),
          cells.series("area_factor").value_at(i)]
         for i, cell in enumerate(CELL_TYPES)],
        unit_hints=["", "W", "J", ""]))
    emit(format_table(
        "ABL3 — hybrid switch-voltage choice",
        ["switch voltage", "E/op @1.0V", "E/op @0.3V", "min operating V"],
        [[voltage,
          hybrids.series("energy_per_op_high").value_at(voltage),
          hybrids.series("energy_per_op_low").value_at(voltage),
          hybrids.series("min_operating_voltage").value_at(voltage)]
         for voltage in SWITCH_VOLTAGES],
        unit_hints=["V", "J", "J", ""]))

    # Segmentation pushes the detectable minimum down but costs gates.
    min_vdd = segmentation.series("min_detectable_vdd")
    gates = segmentation.series("gate_count")
    assert min_vdd.value_at(8.0) <= min_vdd.value_at(0.0)
    assert min_vdd.value_at(4.0) <= min_vdd.value_at(8.0)
    assert gates.value_at(4.0) >= gates.value_at(0.0)
    # 8T cells leak less but are larger.
    six_t, eight_t = 0, 1
    assert (cells.series("array_leakage").value_at(eight_t)
            < cells.series("array_leakage").value_at(six_t))
    assert (cells.series("area_factor").value_at(eight_t)
            > cells.series("area_factor").value_at(six_t))
    # Every hybrid keeps Design 1's operating floor; the switch voltage only
    # affects how much of Design 2's efficiency is captured at mid-range Vdd.
    floors = set(hybrids.series("min_operating_voltage").ys)
    assert len(floors) == 1
    assert all(y > 0 for y in hybrids.series("energy_per_op_high").ys)
    assert all(y > 0 for y in hybrids.series("energy_per_op_low").ys)
