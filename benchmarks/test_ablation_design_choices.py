"""ABL — Ablations of the design choices DESIGN.md calls out.

Three knobs the paper discusses qualitatively are quantified here:

* **Completion-detection segmentation** (Section III-A): "its low Vdd limit
  can be pushed further down in sub-threshold (below 0.3 V) by sectioning the
  completion detection in the column into smaller segments, say, of 8 bit
  each" — at the price of extra gates.
* **8T versus 6T cells**: "leakage power can be reduced by switching to 8T
  cells (with two NMOS transistors in stack)".
* **The hybrid's switch voltage**: where the power-adaptive design hands over
  between Design 1 and Design 2 determines how much of Design 2's efficiency
  it keeps.
"""

from repro.analysis.report import format_table
from repro.core.design_styles import HybridDesign
from repro.sram.cell import CellType
from repro.sram.completion import ColumnCompletionDetector
from repro.sram.sram import SRAMConfig, SpeedIndependentSRAM

from conftest import emit


def run_ablations(tech):
    segmentation = []
    for segment_size in (None, 8, 4):
        detector = ColumnCompletionDetector(technology=tech, columns=16,
                                            segment_size=segment_size)
        segmentation.append([
            "full column" if segment_size is None else f"{segment_size}-bit segments",
            detector.minimum_detectable_vdd(),
            detector.detection_delay(0.3),
            detector.gate_count,
        ])

    cells = []
    for cell_type in (CellType.SIX_T, CellType.EIGHT_T):
        sram = SpeedIndependentSRAM(
            tech, SRAMConfig(cell_type=cell_type, calibrate_energy=False))
        cells.append([cell_type.value,
                      sram.array_leakage_power(1.0),
                      sram.write_energy(0.4),
                      cell_type.area_factor])

    hybrids = []
    for switch_voltage in (0.45, 0.6, 0.8):
        hybrid = HybridDesign(tech, switch_voltage=switch_voltage)
        hybrids.append([switch_voltage,
                        hybrid.energy_per_operation(1.0),
                        hybrid.energy_per_operation(0.3),
                        hybrid.minimum_operating_voltage()])
    return segmentation, cells, hybrids


def test_ablation_of_paper_design_choices(tech, benchmark):
    segmentation, cells, hybrids = benchmark(run_ablations, tech)

    emit(format_table(
        "ABL1 — completion-detection segmentation (16-column array)",
        ["column CD structure", "min detectable Vdd", "detection delay @0.3V",
         "gate count"],
        segmentation, unit_hints=["", "V", "s", ""]))
    emit(format_table(
        "ABL2 — 6T vs 8T cells (1-kbit array)",
        ["cell", "array leakage @1V", "write energy @0.4V", "relative area"],
        cells, unit_hints=["", "W", "J", ""]))
    emit(format_table(
        "ABL3 — hybrid switch-voltage choice",
        ["switch voltage", "E/op @1.0V", "E/op @0.3V", "min operating V"],
        hybrids, unit_hints=["V", "J", "J", ""]))

    # Segmentation pushes the detectable minimum down but costs gates.
    assert segmentation[1][1] <= segmentation[0][1]
    assert segmentation[2][1] <= segmentation[1][1]
    assert segmentation[2][3] >= segmentation[0][3]
    # 8T cells leak less but are larger.
    assert cells[1][1] < cells[0][1]
    assert cells[1][3] > cells[0][3]
    # Every hybrid keeps Design 1's operating floor; the switch voltage only
    # affects how much of Design 2's efficiency is captured at mid-range Vdd.
    floors = {row[3] for row in hybrids}
    assert len(floors) == 1
    assert all(row[1] > 0 and row[2] > 0 for row in hybrids)
