"""FIG6 — Handshake-based control of the self-timed SRAM.

Fig. 6 shows the controller's handshake structure: precharge, word-line and
write-enable commands are sequenced by genuine completion indication, and the
"well-known problem of completion detection during writing is solved by
performing reading before writing".  The benchmark runs one read and one
write through the event-driven controller and prints the phase-by-phase
protocol trace, asserting the ordering the figure prescribes (precharge
before the word line, completion detection before the precharge-return, and
the read-before-write phase present only in writes).

The summary figures are declared as an :class:`ExperimentPlan` over the
``operation`` axis (0 = write, 1 = read); the scenario itself —
:func:`repro.sram.sram.run_handshake_protocol` — runs once per point and
serves all three quantities.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.sram.sram import (
    OPERATION_METRICS,
    SRAMConfig,
    operation_metrics,
    run_handshake_protocol,
)

from conftest import emit

CONFIG = SRAMConfig(rows=16, columns=8, calibrate_energy=False)
#: Plan axis: 0 = the write operation's record, 1 = the read's.
OPERATIONS = [0.0, 1.0]


def build_figure(tech, executor):
    # The read depends on the write (it returns the committed value), so the
    # two operations are one scenario, memoised and indexed by the plan axis.
    memo = {}

    def scenario():
        if "run" not in memo:
            memo["run"] = run_handshake_protocol(tech, CONFIG)
        return memo["run"]

    def record(op):
        return scenario()[1 + int(round(op))]

    plan = ExperimentPlan.sweep("operation", OPERATIONS)
    quantities = {
        metric: (lambda op, metric=metric: operation_metrics(record(op))[metric])
        for metric in OPERATION_METRICS
    }
    result = executor.run(plan, quantities)
    sram, write_record, read_record = scenario()
    return sram, write_record, read_record, result


def test_fig06_sram_handshake_protocol(tech, benchmark, executor):
    sram, write_record, read_record, result = benchmark(
        build_figure, tech, executor)

    for record in (write_record, read_record):
        rows = [[phase.name, phase.start_time, phase.duration, phase.vdd]
                for phase in record.phases]
        emit(format_table(
            f"FIG6 — {record.operation.value} protocol trace "
            f"(address {record.address}, Vdd 0.5 V)",
            ["phase", "start", "duration", "Vdd"],
            rows, unit_hints=["", "s", "s", "V"]))

    emit(format_table(
        "FIG6 — operation summary",
        ["operation", "latency", "energy", "phases"],
        [[write_record.operation.value,
          result.series("latency").value_at(0.0),
          result.series("energy").value_at(0.0),
          int(result.series("phases").value_at(0.0))],
         [read_record.operation.value,
          result.series("latency").value_at(1.0),
          result.series("energy").value_at(1.0),
          int(result.series("phases").value_at(1.0))]],
        unit_hints=["", "s", "J", ""]))

    # The data is actually committed by the handshake sequence.
    assert sram.peek(3) == 0b10110101
    # The plan's summary agrees with the records the traces detail.
    assert result.series("latency").value_at(0.0) == write_record.latency
    assert result.series("latency").value_at(1.0) == read_record.latency

    def phase_names(record):
        return [phase.name for phase in record.phases]

    write_phases = phase_names(write_record)
    read_phases = phase_names(read_record)
    # Precharge precedes the bit-line access; completion detection precedes
    # the return-to-precharge in both operations.
    for phases in (write_phases, read_phases):
        assert any("precharge" in name for name in phases)
        assert any("completion" in name for name in phases)
        first_precharge = min(i for i, n in enumerate(phases) if "precharge" in n)
        access_phase = min(i for i, n in enumerate(phases)
                           if "bitline" in n or "wordline" in n or "read" in n)
        completion_phase = max(i for i, n in enumerate(phases) if "completion" in n)
        assert first_precharge < access_phase < completion_phase
    # The write performs a read first (read-before-write) and then drives data.
    assert any("read" in name for name in write_phases)
    assert any("write" in name for name in write_phases)
    # Phases never overlap: each starts after the previous one ends.
    for record in (write_record, read_record):
        ends = [p.start_time + p.duration for p in record.phases]
        starts = [p.start_time for p in record.phases]
        assert all(s >= e - 1e-15 for s, e in zip(starts[1:], ends[:-1]))
