"""FIG6 — Handshake-based control of the self-timed SRAM.

Fig. 6 shows the controller's handshake structure: precharge, word-line and
write-enable commands are sequenced by genuine completion indication, and the
"well-known problem of completion detection during writing is solved by
performing reading before writing".  The benchmark runs one read and one
write through the event-driven controller and prints the phase-by-phase
protocol trace, asserting the ordering the figure prescribes (precharge
before the word line, completion detection before the precharge-return, and
the read-before-write phase present only in writes).
"""

from repro.analysis.report import format_table
from repro.power.supply import ConstantSupply
from repro.sim.simulator import Simulator
from repro.sram.sram import SRAMConfig, SpeedIndependentSRAM

from conftest import emit

CONFIG = SRAMConfig(rows=16, columns=8, calibrate_energy=False)


def run_protocol(tech):
    sram = SpeedIndependentSRAM(tech, CONFIG)
    sim = Simulator()
    controller = sram.attach(sim, ConstantSupply(0.5))
    records = []
    controller.write(3, 0b10110101,
                     on_complete=lambda rec, val: records.append(rec))
    sim.run()
    controller.read(3, on_complete=lambda rec, val: records.append(rec))
    sim.run()
    return sram, records


def test_fig06_sram_handshake_protocol(tech, benchmark):
    sram, records = benchmark(run_protocol, tech)
    write_record, read_record = records

    for record in (write_record, read_record):
        rows = [[phase.name, phase.start_time, phase.duration, phase.vdd]
                for phase in record.phases]
        emit(format_table(
            f"FIG6 — {record.operation.value} protocol trace "
            f"(address {record.address}, Vdd 0.5 V)",
            ["phase", "start", "duration", "Vdd"],
            rows, unit_hints=["", "s", "s", "V"]))

    emit(format_table(
        "FIG6 — operation summary",
        ["operation", "latency", "energy", "phases"],
        [[write_record.operation.value, write_record.latency,
          write_record.energy, len(write_record.phases)],
         [read_record.operation.value, read_record.latency,
          read_record.energy, len(read_record.phases)]],
        unit_hints=["", "s", "J", ""]))

    # The data is actually committed by the handshake sequence.
    assert sram.peek(3) == 0b10110101

    def phase_names(record):
        return [phase.name for phase in record.phases]

    write_phases = phase_names(write_record)
    read_phases = phase_names(read_record)
    # Precharge precedes the bit-line access; completion detection precedes
    # the return-to-precharge in both operations.
    for phases in (write_phases, read_phases):
        assert any("precharge" in name for name in phases)
        assert any("completion" in name for name in phases)
        first_precharge = min(i for i, n in enumerate(phases) if "precharge" in n)
        access_phase = min(i for i, n in enumerate(phases)
                           if "bitline" in n or "wordline" in n or "read" in n)
        completion_phase = max(i for i, n in enumerate(phases) if "completion" in n)
        assert first_precharge < access_phase < completion_phase
    # The write performs a read first (read-before-write) and then drives data.
    assert any("read" in name for name in write_phases)
    assert any("write" in name for name in write_phases)
    # Phases never overlap: each starts after the previous one ends.
    for record in (write_record, read_record):
        ends = [p.start_time + p.duration for p in record.phases]
        starts = [p.start_time for p in record.phases]
        assert all(s >= e - 1e-15 for s, e in zip(starts[1:], ends[:-1]))
