"""FIG5 — Mismatch between the scaling of SRAM and logic delay.

"At 1 V Vdd the delay of SRAM reading is equal to 50 inverters whereas at
190 mV the delay becomes equal to 158 inverters."  The benchmark sweeps the
bit-line model over 0.19-1.0 V, expresses the SRAM read delay in units of the
inverter delay at the same voltage, and checks the two published anchor
points and the monotone growth of the mismatch as Vdd falls — the reason
simple critical-path-replica bundling does not scale (Section II-B).
"""

import pytest

from repro.analysis.metrics import monotonicity_violations
from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.sram.bitline import calibrate_bitline_to_fig5

from conftest import emit

VDD_SWEEP = [0.19, 0.22, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def build_series(tech, executor):
    bitline = calibrate_bitline_to_fig5(tech)
    result = executor.run(
        ExperimentPlan.sweep("vdd", VDD_SWEEP),
        {"read_delay": bitline.read_delay,
         "in_inverters": bitline.read_delay_in_inverters})
    series = [(vdd, delay, units)
              for (vdd, delay), (_, units)
              in zip(result.series("read_delay").points,
                     result.series("in_inverters").points)]
    return bitline, series


def test_fig05_sram_logic_delay_mismatch(tech, benchmark, executor):
    bitline, series = benchmark(build_series, tech, executor)

    emit(format_table(
        "FIG5 — SRAM read delay expressed in inverter delays",
        ["Vdd", "SRAM read delay", "delay in inverter units"],
        [[vdd, delay, units] for vdd, delay, units in series],
        unit_hints=["V", "s", ""]))

    in_inverters = {vdd: units for vdd, _, units in series}
    # Paper anchors: 50 inverter delays at 1 V, 158 at 190 mV.
    assert in_inverters[1.0] == pytest.approx(50.0, rel=0.10)
    assert in_inverters[0.19] == pytest.approx(158.0, rel=0.10)
    # The mismatch grows monotonically as the supply drops.
    ordered = [units for _, _, units in sorted(series, reverse=True)]
    assert monotonicity_violations(ordered) == 0
    # Roughly the 3x growth the paper highlights.
    assert 2.5 <= in_inverters[0.19] / in_inverters[1.0] <= 4.0
