"""FIG2 — Power-proportional versus power-efficient system design.

Fig. 2 plots QoS against the supply level for two design styles: Design 1
(speed-independent dual-rail with completion detection) "starts to deliver
the sought QoS at a very low Vdd, where Design 2 cannot deliver at all", but
"if the nominal level of power supply is at high Vdd, Design 1 is less
power-efficient than Design 2".  The benchmark sweeps both designs (plus the
recommended hybrid) over 0.15-1.1 V and checks the onset ordering, the
nominal-voltage efficiency ordering and the hybrid's best-of-both behaviour.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.analysis.sweep import vdd_range
from repro.core.design_styles import (
    BundledDataDesign,
    HybridDesign,
    SpeedIndependentDesign,
)
from repro.core.qos import QoSCurve, QoSMetric, qos_point

from conftest import emit

VDD_SWEEP = vdd_range(0.15, 1.1, 20)


def qos_quantity(design, metric):
    """The library's per-point QoS definition, bound for one design."""
    return lambda vdd: qos_point(design, vdd, metric)


def build_curves(tech, executor):
    design1 = SpeedIndependentDesign(tech)
    design2 = BundledDataDesign(tech)
    hybrid = HybridDesign(tech)
    designs = (("design1", design1), ("design2", design2), ("hybrid", hybrid))
    # One declarative plan covers all six curves: two QoS metrics for each
    # of the three design styles, evaluated at every sampled Vdd.
    plan = ExperimentPlan.sweep("vdd", VDD_SWEEP)
    quantities = {}
    for name, design in designs:
        quantities[f"{name}:throughput"] = qos_quantity(
            design, QoSMetric.THROUGHPUT)
        quantities[f"{name}:per_joule"] = qos_quantity(
            design, QoSMetric.OPERATIONS_PER_JOULE)
    result = executor.run(plan, quantities)
    throughput = {name: QoSCurve(name, QoSMetric.THROUGHPUT,
                                 result.series(f"{name}:throughput").points)
                  for name, _ in designs}
    per_joule = {name: QoSCurve(name, QoSMetric.OPERATIONS_PER_JOULE,
                                result.series(f"{name}:per_joule").points)
                 for name, _ in designs}
    return design1, design2, hybrid, throughput, per_joule


def test_fig02_qos_vs_vdd(tech, benchmark, executor):
    design1, design2, hybrid, throughput, per_joule = benchmark(
        build_curves, tech, executor)

    rows = []
    for i, vdd in enumerate(VDD_SWEEP):
        rows.append([vdd,
                     throughput["design1"].points[i][1],
                     throughput["design2"].points[i][1],
                     throughput["hybrid"].points[i][1]])
    emit(format_table(
        "FIG2 — QoS (throughput, ops/s) vs Vdd",
        ["Vdd", "design1 (SI)", "design2 (bundled)", "hybrid"],
        rows, unit_hints=["V", "", "", ""]))
    emit(format_table(
        "FIG2 — key points",
        ["quantity", "design1", "design2", "hybrid"],
        [["onset voltage (V)",
          throughput["design1"].onset_voltage(),
          throughput["design2"].onset_voltage(),
          throughput["hybrid"].onset_voltage()],
         ["ops/J at 1.0 V",
          per_joule["design1"].qos_at(1.0),
          per_joule["design2"].qos_at(1.0),
          per_joule["hybrid"].qos_at(1.0)]]))

    # Shape assertions straight from the paper's Fig. 2 narrative.
    onset1 = throughput["design1"].onset_voltage()
    onset2 = throughput["design2"].onset_voltage()
    assert onset1 < onset2 - 0.1, "Design 1 must wake up at much lower Vdd"
    # Design 2 cannot deliver at all below its floor, where Design 1 can.
    probe = onset2 - 0.05
    assert design1.throughput(probe) > 0
    assert design2.throughput(probe) == 0
    # At nominal Vdd Design 2 is the more power-efficient style.
    assert per_joule["design2"].qos_at(1.0) > per_joule["design1"].qos_at(1.0)
    # The hybrid combines both: Design 1's onset, near-Design 2's efficiency.
    assert throughput["hybrid"].onset_voltage() == onset1
    assert per_joule["hybrid"].qos_at(1.0) > 0.7 * per_joule["design2"].qos_at(1.0)
    assert hybrid.minimum_operating_voltage() == design1.minimum_operating_voltage()
