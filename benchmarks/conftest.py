"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure or in-text number from the paper's
evaluation and prints the corresponding rows; the accompanying assertions pin
the *shape* the paper reports (who wins, by roughly what factor, where the
crossovers and minima fall).

Figure benchmarks declare :class:`~repro.analysis.runner.ExperimentPlan`
grids and run them through a shared :class:`~repro.analysis.runner.Executor`.
``pytest benchmarks --runner-workers N`` fans the plan points out over an
``N``-process pool; the default (0) is the deterministic serial path, and
both produce bit-identical figures.
"""

import pytest

from repro.analysis.runner import Executor
from repro.models.technology import get_technology


def pytest_addoption(parser):
    parser.addoption(
        "--runner-workers", action="store", type=int, default=0,
        help="process-pool size for ExperimentPlan execution "
             "(0 = deterministic serial path)")


@pytest.fixture(scope="session")
def runner_workers(request):
    """Pool size requested on the command line (0 when unavailable)."""
    try:
        return request.config.getoption("--runner-workers")
    except ValueError:
        # The option is registered by this conftest; when pytest is invoked
        # from the repository root the registration happens too late for the
        # command line, so fall back to the serial default.
        return 0


@pytest.fixture(scope="session")
def executor(runner_workers):
    """The experiment executor every figure benchmark runs its plan on."""
    return Executor(workers=runner_workers)


@pytest.fixture(scope="session")
def tech():
    """The paper's 90 nm CMOS process."""
    return get_technology("cmos90")


def emit(text: str) -> None:
    """Print a benchmark table with a blank line around it."""
    print("\n" + text + "\n")
