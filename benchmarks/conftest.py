"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure or in-text number from the paper's
evaluation and prints the corresponding rows; the accompanying assertions pin
the *shape* the paper reports (who wins, by roughly what factor, where the
crossovers and minima fall).

Figure benchmarks declare :class:`~repro.analysis.runner.ExperimentPlan`
grids and run them through one shared
:class:`~repro.analysis.session.Session` — the same front door the
examples, the ``python -m repro`` CLI and library callers use.  Execution
policy resolves through the session's
:class:`~repro.analysis.session.RunConfig` chain: the ``--runner-*``
command-line options below (when given) > ``REPRO_*`` environment
variables > an optional ``repro.toml`` > defaults (serial, cache off,
no fleet).

``pytest benchmarks --runner-workers N`` fans the plan points out over an
``N``-process pool (``auto`` = the CPUs available to the process, i.e.
``os.sched_getaffinity(0)`` where supported); serial and pooled
runs produce bit-identical figures.

``pytest benchmarks --runner-cache {off,rw,ro}`` attaches the persistent
:class:`~repro.analysis.cache.ResultCache` under ``.repro_cache/``: with
``rw``, a second consecutive run answers every plan from disk (the
:class:`~repro.analysis.runner.RunRecord` provenance then reports nonzero
persistent hits); ``ro`` replays an existing cache without ever writing.
CI passes ``off`` explicitly so timing numbers always measure real
evaluation.

``pytest benchmarks --runner-distrib ROOT`` attaches the sharded
multi-machine backend (:class:`~repro.analysis.distrib.DistribBackend`)
over the shared root ``ROOT`` (a directory, or an object-store bucket
URL): plans whose quantities can cross a pickle boundary are partitioned
into leased shards that any fleet worker
(``python -m repro distrib worker --root ROOT``) may claim; the
coordinating pytest process participates, so the suite completes with or
without external workers.  Plans with closure-bound quantities fall back
to the local executor transparently.

``pytest benchmarks --runner-cache-backend {fs,obj:URL}`` selects the
persistent cache's storage backend through the same spec parser the
session layer uses (:meth:`RunConfig.parse_root
<repro.analysis.session.RunConfig.parse_root>`): ``fs`` (the default)
keeps ``.repro_cache/`` on the local filesystem,
``obj:http://HOST:PORT/BUCKET`` aims it at an S3-style object store
(``python -m repro serve objstore`` runs the credential-free fake
server) so
shared-nothing fleet machines replay one another's results.
"""

import pytest

from repro.analysis.cache import CACHE_MODES
from repro.analysis.session import RunConfig, Session
from repro.errors import ConfigurationError
from repro.models.technology import get_technology


def _workers_option(value):
    """``--runner-workers`` parser: delegates to the one implementation."""
    try:
        return RunConfig.parse_workers(value)
    except ConfigurationError as exc:
        raise pytest.UsageError(f"--runner-workers: {exc}")


def _backend_option(value):
    """``--runner-cache-backend`` parser: ``fs``, ``obj:URL``, dir or URL.

    Reuses the session layer's backend-spec parser, so the benchmark CLI
    accepts exactly what ``$REPRO_CACHE_DIR`` and ``repro.toml`` do;
    returns the cache-root spec (``None`` = the filesystem default).
    """
    try:
        return RunConfig.parse_root(value)
    except ConfigurationError as exc:
        raise pytest.UsageError(f"--runner-cache-backend: {exc}")


def pytest_addoption(parser):
    parser.addoption(
        "--runner-workers", action="store", type=_workers_option,
        default=None,
        help="process-pool size for ExperimentPlan execution "
             "(0 = deterministic serial path, auto = available cpus; "
             "default: resolved from REPRO_WORKERS / repro.toml)")
    parser.addoption(
        "--runner-cache", action="store", choices=CACHE_MODES, default=None,
        help="persistent result cache "
             "(off = always evaluate, rw = read and write, ro = read only; "
             "default: resolved from REPRO_CACHE_MODE / repro.toml)")
    parser.addoption(
        "--runner-cache-backend", action="store", type=_backend_option,
        default=None, metavar="{fs,obj:URL}",
        help="storage backend of the persistent cache: fs = .repro_cache/ "
             "on the local filesystem, obj:URL = an S3-style object store "
             "at URL (http://HOST:PORT/BUCKET); a directory path or bare "
             "bucket URL also works (default: resolved from "
             "REPRO_CACHE_DIR / repro.toml)")
    parser.addoption(
        "--runner-distrib", action="store", default=None, metavar="ROOT",
        help="shared root for sharded multi-machine execution — a "
             "directory or an object-store bucket URL (default: resolved "
             "from REPRO_DISTRIB_ROOT / repro.toml; none = local)")


def _option(request, name, default):
    try:
        return request.config.getoption(name)
    except ValueError:
        # The options are registered by this conftest; when pytest is invoked
        # from the repository root the registration happens too late for the
        # command line, so fall back to the defaults.
        return default


@pytest.fixture(scope="session")
def run_config(request):
    """Execution policy: CLI options > REPRO_* env > repro.toml > defaults.

    Options left at their ``None`` defaults fall through to the
    environment/file/default tiers of the one documented chain.
    """
    return RunConfig.resolve(
        workers=_option(request, "--runner-workers", None),
        cache_mode=_option(request, "--runner-cache", None),
        cache_root=_option(request, "--runner-cache-backend", None),
        distrib_root=_option(request, "--runner-distrib", None),
    )


@pytest.fixture(scope="session")
def run_session(run_config):
    """The one Session every figure benchmark executes through."""
    with Session(run_config) as session:
        yield session


@pytest.fixture(scope="session")
def executor(run_session):
    """The experiment executor every figure benchmark runs its plan on."""
    return run_session.executor


@pytest.fixture(scope="session")
def tech():
    """The paper's 90 nm CMOS process."""
    return get_technology("cmos90")


@pytest.fixture(scope="session")
def smoke_campaign():
    """The bundled ``paper_space`` campaign, trimmed to its smoke skeleton.

    Compiled once per session: the campaign benchmarks measure execution
    through the shared Session, not TOML parsing.  Skips on interpreters
    without :mod:`tomllib` (the campaign file format needs Python 3.11).
    """
    pytest.importorskip("tomllib")
    from repro.analysis.campaign import compile_campaign, load_campaign
    from repro.analysis.campaign.spec import builtin_campaign_path

    spec = load_campaign(builtin_campaign_path("paper_space"))
    return compile_campaign(spec.trimmed())


def emit(text: str) -> None:
    """Print a benchmark table with a blank line around it."""
    print("\n" + text + "\n")
