"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure or in-text number from the paper's
evaluation and prints the corresponding rows; the accompanying assertions pin
the *shape* the paper reports (who wins, by roughly what factor, where the
crossovers and minima fall).

Figure benchmarks declare :class:`~repro.analysis.runner.ExperimentPlan`
grids and run them through a shared :class:`~repro.analysis.runner.Executor`.
``pytest benchmarks --runner-workers N`` fans the plan points out over an
``N``-process pool; the default (0) is the deterministic serial path, and
both produce bit-identical figures.

``pytest benchmarks --runner-cache {off,rw,ro}`` additionally attaches the
persistent :class:`~repro.analysis.cache.ResultCache` under
``.repro_cache/``: with ``rw``, a second consecutive run answers every plan
from disk (the :class:`~repro.analysis.runner.RunRecord` provenance then
reports nonzero persistent hits); ``ro`` replays an existing cache without
ever writing.  CI runs with the default ``off`` so timing numbers always
measure real evaluation.

``pytest benchmarks --runner-distrib ROOT`` attaches the sharded
multi-machine backend (:class:`~repro.analysis.distrib.DistribBackend`)
over the shared root ``ROOT`` (a directory, or an object-store bucket
URL): plans whose quantities can cross a pickle boundary are partitioned
into leased shards that any fleet worker
(``python -m repro.analysis.distrib worker --root ROOT``) may claim; the
coordinating pytest process participates, so the suite completes with or
without external workers.  Plans with closure-bound quantities fall back
to the local executor transparently.

``pytest benchmarks --runner-cache-backend {fs,obj:URL}`` selects the
persistent cache's storage backend: ``fs`` (the default) keeps
``.repro_cache/`` on the local filesystem, ``obj:http://HOST:PORT/BUCKET``
aims it at an S3-style object store (``python -m repro.analysis.objstore
--serve`` runs the credential-free fake server) so shared-nothing fleet
machines replay one another's results.
"""

import os

import pytest

from repro.analysis.cache import CACHE_MODES, ResultCache
from repro.analysis.distrib import DistribBackend
from repro.analysis.runner import Executor
from repro.models.technology import get_technology


def _workers_option(value):
    """``--runner-workers`` parser: a pool size, or ``auto`` = cpu count."""
    if value == "auto":
        return os.cpu_count() or 1
    return int(value)


def _backend_option(value):
    """``--runner-cache-backend`` parser: ``fs`` or ``obj:URL``.

    Returns the cache-root spec the chosen backend implies: ``None`` for
    the filesystem default, the bucket URL for the object store.
    """
    if value == "fs":
        return None
    if value.startswith("obj:"):
        url = value[len("obj:"):]
        if url.startswith(("http://", "https://")):
            return url
    raise pytest.UsageError(
        "--runner-cache-backend must be 'fs' or "
        "'obj:http://HOST:PORT/BUCKET'; got " + repr(value))


def pytest_addoption(parser):
    parser.addoption(
        "--runner-workers", action="store", type=_workers_option, default=0,
        help="process-pool size for ExperimentPlan execution "
             "(0 = deterministic serial path, auto = os.cpu_count())")
    parser.addoption(
        "--runner-cache", action="store", choices=CACHE_MODES, default="off",
        help="persistent result cache "
             "(off = always evaluate, rw = read and write, ro = read only)")
    parser.addoption(
        "--runner-cache-backend", action="store", type=_backend_option,
        default="fs", metavar="{fs,obj:URL}",
        help="storage backend of the persistent cache: fs = .repro_cache/ "
             "on the local filesystem (default), obj:URL = an S3-style "
             "object store at URL (http://HOST:PORT/BUCKET)")
    parser.addoption(
        "--runner-distrib", action="store", default=None, metavar="ROOT",
        help="shared root for sharded multi-machine execution — a "
             "directory or an object-store bucket URL "
             "(default: no distribution)")


def _option(request, name, default):
    try:
        return request.config.getoption(name)
    except ValueError:
        # The options are registered by this conftest; when pytest is invoked
        # from the repository root the registration happens too late for the
        # command line, so fall back to the defaults.
        return default


@pytest.fixture(scope="session")
def runner_workers(request):
    """Pool size requested on the command line (0 when unavailable)."""
    return _option(request, "--runner-workers", 0)


@pytest.fixture(scope="session")
def runner_cache_mode(request):
    """Persistent-cache mode requested on the command line ("off" default)."""
    return _option(request, "--runner-cache", "off")


@pytest.fixture(scope="session")
def runner_cache_root(request):
    """Cache-root spec of the selected backend (None = local filesystem).

    ``--runner-cache-backend fs`` (the default) resolves to ``None`` —
    the cache's own default root; ``obj:URL`` resolves to the bucket URL.
    """
    return _option(request, "--runner-cache-backend", None)


@pytest.fixture(scope="session")
def runner_distrib_root(request):
    """Shared distrib root from the command line (None = no distribution)."""
    return _option(request, "--runner-distrib", None)


@pytest.fixture(scope="session")
def executor(runner_workers, runner_cache_mode, runner_cache_root,
             runner_distrib_root):
    """The experiment executor every figure benchmark runs its plan on."""
    persistent = None
    if runner_cache_mode != "off":
        persistent = ResultCache(mode=runner_cache_mode,
                                 root=runner_cache_root)
    distrib = None
    if runner_distrib_root is not None:
        # Shards the coordinator executes itself still honour the
        # requested pool size.
        distrib = DistribBackend(root=runner_distrib_root,
                                 executor_workers=runner_workers)
    return Executor(workers=runner_workers, persistent=persistent,
                    distrib=distrib)


@pytest.fixture(scope="session")
def tech():
    """The paper's 90 nm CMOS process."""
    return get_technology("cmos90")


def emit(text: str) -> None:
    """Print a benchmark table with a blank line around it."""
    print("\n" + text + "\n")
