"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure or in-text number from the paper's
evaluation and prints the corresponding rows; the accompanying assertions pin
the *shape* the paper reports (who wins, by roughly what factor, where the
crossovers and minima fall).
"""

import pytest

from repro.models.technology import get_technology


@pytest.fixture(scope="session")
def tech():
    """The paper's 90 nm CMOS process."""
    return get_technology("cmos90")


def emit(text: str) -> None:
    """Print a benchmark table with a blank line around it."""
    print("\n" + text + "\n")
