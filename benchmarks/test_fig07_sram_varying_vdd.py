"""FIG7 — Operation of the SI SRAM under varying Vdd.

Fig. 7 shows the SI SRAM performing writes while the supply varies: "the
first writing works under low Vdd, it takes long time, while the second
write, at high Vdd, works much faster."  The benchmark reproduces exactly
that scenario on the event-driven controller — one write while the rail sits
at 0.25 V, a second write after the rail has risen to 1.0 V — and checks that
both writes commit correct data, with the low-voltage one roughly an order of
magnitude slower.

The two writes are declared as an :class:`ExperimentPlan` over the
``write_index`` axis (0 = depleted rail, 1 = recovered rail); the scenario —
:func:`repro.sram.sram.run_varying_rail_writes` — runs once per point and
serves all quantities.
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.sram.sram import (
    OPERATION_METRICS,
    SRAMConfig,
    operation_metrics,
    run_varying_rail_writes,
)

from conftest import emit

CONFIG = SRAMConfig(rows=16, columns=8, calibrate_energy=False)
LOW_VDD = 0.25
HIGH_VDD = 1.0
#: Plan axis: 0 = the write on the depleted rail, 1 = after recovery.
WRITE_INDICES = [0.0, 1.0]


def build_figure(tech, executor):
    # The second write follows the supply step of the same simulation, so
    # the scenario is one memoised run indexed by the plan axis.
    memo = {}

    def scenario():
        if "run" not in memo:
            memo["run"] = run_varying_rail_writes(
                tech, CONFIG, low_vdd=LOW_VDD, high_vdd=HIGH_VDD)
        return memo["run"]

    def record(index):
        return scenario()[1 + int(round(index))]

    plan = ExperimentPlan.sweep("write_index", WRITE_INDICES)
    quantities = {
        metric: (lambda i, metric=metric: operation_metrics(record(i))[metric])
        for metric in OPERATION_METRICS
    }
    result = executor.run(plan, quantities)
    sram, slow_write, fast_write = scenario()
    return sram, slow_write, fast_write, result


def test_fig07_sram_operation_under_varying_vdd(tech, benchmark, executor):
    sram, slow_write, fast_write, result = benchmark(
        build_figure, tech, executor)
    latency = result.series("latency")
    energy = result.series("energy")

    emit(format_table(
        "FIG7 — two writes under a varying rail",
        ["write", "rail during write", "latency", "energy", "data committed"],
        [["first (depleted rail)", LOW_VDD, latency.value_at(0.0),
          energy.value_at(0.0), hex(sram.peek(1))],
         ["second (recovered rail)", HIGH_VDD, latency.value_at(1.0),
          energy.value_at(1.0), hex(sram.peek(2))]],
        unit_hints=["", "V", "s", "J", ""]))

    # Both writes succeed; only the latency differs (the paper's point).
    assert sram.peek(1) == 0xA5
    assert sram.peek(2) == 0x5A
    assert latency.value_at(0.0) > 5 * latency.value_at(1.0)
    # The plan's quantities agree with the records themselves.
    assert latency.value_at(0.0) == slow_write.latency
    assert latency.value_at(1.0) == fast_write.latency
    # The analytical model agrees on the ordering and rough factor.
    analytic_ratio = sram.write_latency(LOW_VDD) / sram.write_latency(HIGH_VDD)
    measured_ratio = slow_write.latency / fast_write.latency
    assert measured_ratio == pytest.approx(analytic_ratio, rel=0.5)
