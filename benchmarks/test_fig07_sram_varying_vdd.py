"""FIG7 — Operation of the SI SRAM under varying Vdd.

Fig. 7 shows the SI SRAM performing writes while the supply varies: "the
first writing works under low Vdd, it takes long time, while the second
write, at high Vdd, works much faster."  The benchmark reproduces exactly
that scenario on the event-driven controller — one write while the rail sits
at 0.25 V, a second write after the rail has risen to 1.0 V — and checks that
both writes commit correct data, with the low-voltage one roughly an order of
magnitude slower.
"""

import pytest

from repro.analysis.report import format_table
from repro.power.supply import PiecewiseSupply
from repro.sim.simulator import Simulator
from repro.sram.sram import SRAMConfig, SpeedIndependentSRAM

from conftest import emit

CONFIG = SRAMConfig(rows=16, columns=8, calibrate_energy=False)
LOW_VDD = 0.25
HIGH_VDD = 1.0


def run_two_writes(tech):
    sram = SpeedIndependentSRAM(tech, CONFIG)
    sim = Simulator()
    # The rail starts low and steps up to nominal after 1 us (a recovering
    # harvester store, as in the paper's waveform).
    supply = PiecewiseSupply([(0.0, LOW_VDD), (1e-6, HIGH_VDD)])
    controller = sram.attach(sim, supply)
    records = []
    controller.write(1, 0xA5, on_complete=lambda rec, val: records.append(rec))
    sim.run()
    # Move past the supply step, then issue the second write.
    sim.advance_to(1.5e-6)
    controller.write(2, 0x5A, on_complete=lambda rec, val: records.append(rec))
    sim.run()
    return sram, records


def test_fig07_sram_operation_under_varying_vdd(tech, benchmark):
    sram, records = benchmark(run_two_writes, tech)
    slow_write, fast_write = records

    emit(format_table(
        "FIG7 — two writes under a varying rail",
        ["write", "rail during write", "latency", "energy", "data committed"],
        [["first (depleted rail)", LOW_VDD, slow_write.latency,
          slow_write.energy, hex(sram.peek(1))],
         ["second (recovered rail)", HIGH_VDD, fast_write.latency,
          fast_write.energy, hex(sram.peek(2))]],
        unit_hints=["", "V", "s", "J", ""]))

    # Both writes succeed; only the latency differs (the paper's point).
    assert sram.peek(1) == 0xA5
    assert sram.peek(2) == 0x5A
    assert slow_write.latency > 5 * fast_write.latency
    # The analytical model agrees on the ordering and rough factor.
    analytic_ratio = sram.write_latency(LOW_VDD) / sram.write_latency(HIGH_VDD)
    measured_ratio = slow_write.latency / fast_write.latency
    assert measured_ratio == pytest.approx(analytic_ratio, rel=0.5)
