"""SRAM-E — In-text energy numbers for the 1-kbit SI SRAM.

The paper reports, for the 64x16 design in UMC 90 nm: "It showed minimum
energy point per read or write at 0.4 V.  It consumes 5.8 pJ at 1 V for a
write of a 16-bit word and 1.9 pJ at 0.4 V."  The benchmark sweeps energy per
write (and per read) over the 0.2-1.0 V range, prints the table, and checks
the three published facts: the two absolute anchors and the location of the
interior minimum-energy point.
"""

import pytest

from repro.analysis.metrics import minimum_energy_point, ratio_between
from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.analysis.sweep import sweep, vdd_range
from repro.sram.sram import SpeedIndependentSRAM
from repro.units import ROOM_TEMPERATURE_K

from conftest import emit

VDD_SWEEP = vdd_range(0.2, 1.0, 17)
#: Junction temperatures for the 2-D (Vdd × temperature) energy grid.
TEMPERATURES = [250.0, ROOM_TEMPERATURE_K, 350.0]


def build_energy_table(tech):
    sram = SpeedIndependentSRAM(tech)
    rows = [[vdd, sram.write_energy(vdd), sram.read_energy(vdd),
             sram.write_latency(vdd)] for vdd in VDD_SWEEP]
    return sram, rows


def test_sram_energy_per_operation_table(tech, benchmark):
    sram, rows = benchmark(build_energy_table, tech)

    emit(format_table(
        "SRAM-E — energy per operation of the 64x16 SI SRAM (90 nm model)",
        ["Vdd", "write energy", "read energy", "write latency"],
        rows, unit_hints=["V", "J", "J", "s"]))

    vdd_opt, e_opt = minimum_energy_point(sram.write_energy, 0.2, 1.0)
    model_opt = sram.energy_model("write").minimum_energy_point(0.2, 1.0)
    emit(format_table(
        "SRAM-E — headline numbers vs the paper",
        ["quantity", "paper", "this model"],
        [["write energy @ 1.0 V (J)", 5.8e-12, sram.write_energy(1.0)],
         ["write energy @ 0.4 V (J)", 1.9e-12, sram.write_energy(0.4)],
         ["minimum-energy-point voltage (V)", 0.4, vdd_opt],
         ["1 V / 0.4 V energy ratio", 5.8 / 1.9,
          ratio_between(sram.write_energy, 1.0, 0.4)]]))

    # Published anchors (the model is calibrated to them; the check guards
    # against regressions in the component models breaking the fit).
    assert sram.write_energy(1.0) == pytest.approx(5.8e-12, rel=0.05)
    assert sram.write_energy(0.4) == pytest.approx(1.9e-12, rel=0.05)
    # Interior minimum-energy point near 0.4 V, from both the direct sweep
    # and the switching/leakage decomposition.
    assert 0.3 <= vdd_opt <= 0.55
    assert 0.3 <= model_opt[0] <= 0.55
    assert e_opt < sram.write_energy(1.0)
    assert e_opt < sram.write_energy(0.21)
    # Roughly the 3x saving the paper quotes between 1 V and 0.4 V.
    assert 2.0 <= ratio_between(sram.write_energy, 1.0, 0.4) <= 4.5


def build_energy_grid(tech, executor):
    srams = {}

    def write_energy(vdd, temperature_k):
        if temperature_k not in srams:
            # The executor's keyed cache deduplicates the Technology rebuild
            # for every Vdd point that shares this grid row.
            warm = executor.cache.scaled(tech, temperature_k=temperature_k)
            srams[temperature_k] = SpeedIndependentSRAM(warm)
        return srams[temperature_k].write_energy(vdd)

    plan = ExperimentPlan.grid("vdd", VDD_SWEEP,
                               "temperature_k", TEMPERATURES)
    return executor.run(plan, {"write_energy": write_energy})


def test_sram_energy_grid_over_temperature(tech, benchmark, executor):
    """SRAM-E×T — the Vdd × temperature grid the 1-D sweep cannot express."""
    result = benchmark(build_energy_grid, tech, executor)

    grid = result.value_grid("write_energy")
    emit(format_table(
        "SRAM-E×T — write energy over Vdd × junction temperature",
        ["Vdd"] + [f"{t:.0f} K" for t in TEMPERATURES],
        [[vdd] + row for vdd, row in zip(VDD_SWEEP, grid)],
        unit_hints=["V"] + ["J"] * len(TEMPERATURES)))

    assert len(grid) == len(VDD_SWEEP)
    assert all(len(row) == len(TEMPERATURES) for row in grid)
    # The room-temperature cut of the grid reproduces the 1-D sweep
    # bit-identically — the grid generalises, it does not drift.
    room = result.series_at("write_energy",
                            temperature_k=ROOM_TEMPERATURE_K)
    baseline = sweep("vdd", VDD_SWEEP,
                     {"write_energy": SpeedIndependentSRAM(tech).write_energy})
    assert room.ys == baseline["write_energy"].ys
    # Deep in the sub-threshold regime a cold die is slower, so the
    # leakage-dominated write costs more energy than on a hot die.
    cold = result.series_at("write_energy", temperature_k=TEMPERATURES[0])
    hot = result.series_at("write_energy", temperature_k=TEMPERATURES[-1])
    assert cold.value_at(VDD_SWEEP[0]) > hot.value_at(VDD_SWEEP[0])
