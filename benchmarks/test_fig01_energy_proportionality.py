"""FIG1 — The idea of energy-proportional computing.

Fig. 1 of the paper sketches activity versus supplied energy: an
energy-proportional system produces useful activity even for small energy
quanta, while a conventional system pays a fixed overhead before any useful
work appears.  The benchmark regenerates that curve quantitatively for the
paper's two design styles: the speed-independent (Design 1) fabric, which can
run at whatever voltage the tiny energy budget supports, versus the
bundled-data (Design 2) fabric, which cannot operate below its timing-margin
floor and therefore wastes small budgets entirely.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.core.design_styles import BundledDataDesign, SpeedIndependentDesign
from repro.core.proportionality import (
    ProportionalityCurve,
    activity_for_budget,
    dynamic_range,
    proportionality_index,
)

from conftest import emit

#: Per-burst energy budgets, in joules (covering nJ bursts a harvester yields).
ENERGY_BUDGETS = [2e-12, 5e-12, 10e-12, 20e-12, 50e-12, 100e-12, 200e-12,
                  500e-12, 1e-9, 2e-9]
#: Duty-cycle window one burst must bridge, in seconds (sets the leakage tax
#: paid before any useful work happens).
BURST_WINDOW = 1e-4


def build_curves(tech, executor):
    design1 = SpeedIndependentDesign(tech)
    design2 = BundledDataDesign(tech)
    # Each style runs at the lowest voltage it can still function at — the
    # most energy-frugal point available to it.
    vdd1 = max(design1.minimum_operating_voltage() + 0.05, 0.2)
    vdd2 = design2.minimum_operating_voltage() + 0.05
    plan = ExperimentPlan.sweep("energy_budget", ENERGY_BUDGETS)
    result = executor.run(plan, {
        "design1": lambda e: activity_for_budget(design1, vdd1, e,
                                                 BURST_WINDOW),
        "design2": lambda e: activity_for_budget(design2, vdd2, e,
                                                 BURST_WINDOW),
    })
    curve1 = ProportionalityCurve("design1_si@%.2fV" % vdd1,
                                  result.series("design1").points)
    curve2 = ProportionalityCurve("design2_bundled@%.2fV" % vdd2,
                                  result.series("design2").points)
    return curve1, curve2


def test_fig01_energy_proportionality(tech, benchmark, executor):
    curve1, curve2 = benchmark(build_curves, tech, executor)

    rows = []
    for (energy, act1), (_, act2) in zip(curve1.points, curve2.points):
        rows.append([energy, act1, act2])
    emit(format_table(
        "FIG1 — useful activity vs supplied energy (one 1 us burst)",
        ["energy", "design1 (SI) ops", "design2 (bundled) ops"],
        rows, unit_hints=["J", "", ""]))
    emit(format_table(
        "FIG1 — proportionality metrics",
        ["design", "proportionality index", "dynamic range"],
        [[curve1.name, proportionality_index(curve1), dynamic_range(curve1)],
         [curve2.name, proportionality_index(curve2), dynamic_range(curve2)]]))

    # Shape assertions: the SI design is the energy-proportional one.
    assert curve1.onset_energy() <= curve2.onset_energy()
    assert proportionality_index(curve1) > proportionality_index(curve2)
    assert dynamic_range(curve1) >= dynamic_range(curve2)
    # At the smallest useful budget the SI design already delivers activity.
    assert curve1.activity_at(100e-12) > 0.0
