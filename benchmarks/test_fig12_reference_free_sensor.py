"""FIG12 — Reference-free voltage sensing by racing an SRAM against a ruler.

Fig. 12's idea: two circuits race from the same unknown rail; the completion
event of the SRAM cell marks a position on the inverter-chain "ruler", and
that thermometer code *is* the measurement — no time, voltage or current
reference anywhere.  The paper's implementation "can work under a wide range
of Vdd, from 200 mV to 1 V ... with an accuracy of 10 mV".  The benchmark
sweeps the race over that range, prints the code and the recovered voltage,
and checks monotonicity, the operating range and the 10 mV worst-case
accuracy.

The probe series is declared as an :class:`ExperimentPlan` sweep; each point
is one race through :func:`repro.sensors.reference_free.race_metrics` on a
sensor calibrated once per figure.
"""

from repro.analysis.metrics import monotonicity_violations
from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.sensors.reference_free import (
    RACE_METRICS,
    ReferenceFreeVoltageSensor,
    race_metrics,
)

from conftest import emit

CALIBRATION_GRID = [0.20 + 0.01 * i for i in range(81)]
PROBE_VOLTAGES = [0.205 + 0.05 * i for i in range(16)]


def build_figure(tech, executor):
    sensor = ReferenceFreeVoltageSensor(technology=tech)
    sensor.calibrate(CALIBRATION_GRID)
    # One race per probe voltage, memoised so the three quantities of a
    # point share a single race.
    races = {}

    def raced(vdd):
        if vdd not in races:
            races[vdd] = race_metrics(sensor, vdd)
        return races[vdd]

    plan = ExperimentPlan.sweep("true_vdd", PROBE_VOLTAGES)
    quantities = {
        metric: (lambda vdd, metric=metric: raced(vdd)[metric])
        for metric in RACE_METRICS
    }
    result = executor.run(plan, quantities)
    return sensor, result


def test_fig12_reference_free_voltage_sensor(tech, benchmark, executor):
    sensor, result = benchmark(build_figure, tech, executor)

    rows = [[vdd,
             int(result.series("code").value_at(vdd)),
             result.series("measured").value_at(vdd),
             result.series("error").value_at(vdd)]
            for vdd in PROBE_VOLTAGES]
    emit(format_table(
        "FIG12 — SRAM-vs-ruler race sensor over the 0.2-1.0 V range",
        ["true Vdd", "thermometer code", "measured", "error"],
        rows, unit_hints=["V", "", "V", "V"]))
    low, high = sensor.operating_range()
    errors = result.series("error").ys
    emit(format_table(
        "FIG12 — headline properties",
        ["quantity", "paper", "this model"],
        [["operating range low (V)", 0.2, low],
         ["operating range high (V)", 1.0, high],
         ["worst-case accuracy (V)", 0.010, max(errors)]]))

    codes = [int(code) for code in result.series("code").ys]
    # The code is monotone (decreasing) in Vdd — the ruler gains on the SRAM.
    assert monotonicity_violations(list(reversed(codes))) == 0
    # Paper's range and accuracy claims.
    assert low <= 0.25
    assert high >= 0.9
    assert max(errors) <= 0.010 + 1e-9
    # No analog reference is involved: the measurement is a pure digital
    # code (integral-valued even though the plan carries it as a float).
    assert all(code == int(code) for code in result.series("code").ys)
