"""FIG11 — Final count versus the initial voltage on the sampling capacitor.

Fig. 11 plots the code accumulated by the self-timed counter against the
initial value of Vdd on C_sample.  The benchmark sweeps the sampled voltage
over 0.3-1.0 V, prints the transfer function, and checks the properties that
make the converter usable as a voltage sensor: zero code below the functional
minimum, strictly monotone growth above it, and enough resolution that the
code distinguishes 50 mV steps across the range.
"""

import pytest

from repro.analysis.metrics import monotonicity_violations
from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.power.supply import ConstantSupply
from repro.sensors.charge_to_digital import ChargeToDigitalConverter

from conftest import emit

SAMPLED_VOLTAGES = [0.10, 0.20, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60,
                    0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00]


def build_transfer_function(tech, executor):
    converter = ChargeToDigitalConverter(technology=tech,
                                         sampling_capacitance=30e-12)
    result = executor.run(
        ExperimentPlan.sweep("sampled_vdd", SAMPLED_VOLTAGES),
        {"count": lambda v: converter.convert(ConstantSupply(v)).count})
    counts = [(v, int(count)) for v, count in result.series("count").points]
    return converter, counts


def test_fig11_count_vs_initial_vdd(tech, benchmark, executor):
    converter, counts = benchmark(build_transfer_function, tech, executor)

    emit(format_table(
        "FIG11 — count vs initial voltage of C_sample (30 pF)",
        ["initial Vdd", "count", "predicted count"],
        [[v, c, converter.predicted_count(v)] for v, c in counts],
        unit_hints=["V", "", ""]))

    by_voltage = dict(counts)
    # Below the logic's functional minimum nothing counts.
    assert by_voltage[0.10] == 0
    # Above ~0.3 V the transfer function is strictly monotone increasing.
    active = [c for v, c in counts if v >= 0.3]
    assert monotonicity_violations(active) == 0
    assert all(b > a for a, b in zip(active, active[1:]))
    # Sensible sensitivity: a 50 mV step always changes the code.
    deltas = [b - a for a, b in zip(active, active[1:])]
    assert min(deltas) >= 1
    # The gain reported by the closed form matches the simulated slope sign
    # and order of magnitude.
    simulated_gain = (active[-1] - active[0]) / (1.0 - 0.3)
    assert converter.conversion_gain(0.3, 1.0) == pytest.approx(simulated_gain,
                                                                rel=0.35)
