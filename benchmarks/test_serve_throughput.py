"""Admission + scheduling overhead of the multi-tenant experiment service.

The service's promise is that fairness and overload control are a thin
tier over the Session: a plan admitted through
:class:`~repro.analysis.serve.service.ExperimentService` pays for
``MODULE:FACTORY`` resolution, the admission-gate verdict, a VTC
scheduler hop and record bookkeeping — and then runs on exactly the
``Session.run`` the direct path calls alone.  This benchmark measures
that tax per plan (in-process service vs direct session, same plans,
same warm caches) and records it in the CI ``BENCH_ci.json`` artifact's
``extra_info``, alongside one timed round over the real HTTP wire for
scale.

The service path uses three tenants so the measured number includes real
multi-tenant VTC accounting, not the single-queue fast path.
"""

import time

from repro.analysis.report import format_table
from repro.analysis.serve import (
    ExperimentServer,
    ExperimentService,
    ServiceClient,
    demo_plan,
)
from repro.analysis.session import RunConfig, Session

from conftest import emit

#: Plans per measured round; enough to amortize dispatcher spin-up.
N_PLANS = 24
SPEC = "repro.analysis.serve:demo_plan"


def _service_round(session):
    """Submit N_PLANS across three tenants and wait for all of them."""
    with ExperimentService(session=session, scheduler="vtc",
                           dispatchers=1) as service:
        records = [service.submit({"plan": SPEC,
                                   "tenant": f"tenant{i % 3}"})[0]
                   for i in range(N_PLANS)]
        for record in records:
            service.wait_for(record["id"], timeout_s=300)
        return [service.record(record["id"], with_values=True)
                for record in records]


def _http_round(session):
    """The same round over a real socket (client + server overhead)."""
    with ExperimentService(session=session, scheduler="vtc",
                           dispatchers=1, start=True) as service, \
            ExperimentServer(service, port=0) as server:
        client = ServiceClient(server.url)
        ids = [client.submit_plan(SPEC, tenant=f"tenant{i % 3}")["id"]
               for i in range(N_PLANS)]
        return [client.wait(plan_id, timeout_s=300) for plan_id in ids]


def test_service_admission_scheduling_overhead(benchmark):
    config = RunConfig.resolve(environ={}, config_file=False)
    plan, quantities = demo_plan()
    with Session(config) as session:
        session.run(plan, quantities)  # warm the shared technology cache
        finished = benchmark(lambda: _service_round(session))

        start = time.perf_counter()
        for _ in range(N_PLANS):
            direct = session.run(plan, quantities)
        direct_s = time.perf_counter() - start

        start = time.perf_counter()
        over_http = _http_round(session)
        http_s = time.perf_counter() - start

    assert all(record["state"] == "done" for record in finished)
    assert all(record["state"] == "done" for record in over_http)

    service_s = benchmark.stats.stats.min
    overhead_per_plan = max(0.0, (service_s - direct_s) / N_PLANS)
    http_overhead_per_plan = max(0.0, (http_s - direct_s) / N_PLANS)
    benchmark.extra_info["plans"] = N_PLANS
    benchmark.extra_info["direct_session_s"] = direct_s
    benchmark.extra_info["service_s"] = service_s
    benchmark.extra_info["http_round_s"] = http_s
    benchmark.extra_info["overhead_per_plan_s"] = overhead_per_plan
    benchmark.extra_info["http_overhead_per_plan_s"] = http_overhead_per_plan

    emit(format_table(
        "Experiment service — admission + scheduling tax per plan",
        ["path", "round", "per plan", "overhead/plan"],
        [["direct Session.run", direct_s, direct_s / N_PLANS, 0.0],
         ["in-process service", service_s, service_s / N_PLANS,
          overhead_per_plan],
         ["HTTP client+server", http_s, http_s / N_PLANS,
          http_overhead_per_plan]],
        unit_hints=["", "s", "s", "s"]))

    # The fairness/admission tier must stay a thin wrapper: well under
    # 50 ms of bookkeeping per plan even on a loaded CI runner.
    assert overhead_per_plan < 0.05
    # And the service changes ordering, never arithmetic.
    assert all(record["values"] == direct.values for record in finished)
