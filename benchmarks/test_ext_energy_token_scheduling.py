"""EXT1 — Task scheduling based on the energy-token model (reference [15]).

Section IV points to energy-token Petri nets and task scheduling "according
to the power profile" as the system-level half of energy-modulated computing.
The benchmark schedules a sensor-node workload (sense → filter → log /
transmit) against a bursty harvested-energy profile under four policies and
prints the value each policy extracts from the same energy.  The
energy-frugal (value-per-energy) policy must extract at least as much value
as FIFO, and no policy may spend more energy than was harvested.

The policy comparison is declared as an :class:`ExperimentPlan` over the
``policy_index`` axis; each point is one scheduling run through
:func:`repro.core.scheduler.run_policy`.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.core.scheduler import (
    SCHEDULE_METRICS,
    SchedulingPolicy,
    Task,
    run_policy,
    schedule_metrics,
)

from conftest import emit

POLICIES = list(SchedulingPolicy)
JOULES_PER_TOKEN = 0.5e-9
STORAGE_CAPACITY = 40e-9


def sensor_node_workload():
    return [
        Task("sense", energy=2e-9, duration=1, value=1.0, periodic_every=4),
        Task("filter", energy=4e-9, duration=1, value=2.0, depends_on=("sense",)),
        Task("log", energy=1e-9, duration=1, value=0.5, depends_on=("filter",)),
        Task("compress", energy=8e-9, duration=2, value=3.0,
             depends_on=("filter",)),
        Task("transmit", energy=30e-9, duration=2, value=10.0,
             depends_on=("compress",), deadline=30),
        Task("housekeeping", energy=0.5e-9, duration=1, value=0.2,
             periodic_every=8),
    ]


def bursty_profile(slots=40):
    """A harvester that alternates droughts with short energetic bursts."""
    profile = []
    for slot in range(slots):
        if slot % 8 in (0, 1):
            profile.append(12e-9)
        elif slot % 8 == 4:
            profile.append(4e-9)
        else:
            profile.append(1e-9)
    return profile


def build_figure(tech, executor):
    # One scheduling run per policy, memoised so the nine quantities of a
    # point share a single run (and the table can list unfinished tasks).
    results = {}

    def scheduled(index):
        key = int(round(index))
        if key not in results:
            results[key] = run_policy(
                sensor_node_workload(), bursty_profile(), POLICIES[key],
                joules_per_token=JOULES_PER_TOKEN,
                storage_capacity=STORAGE_CAPACITY)
        return results[key]

    plan = ExperimentPlan.sweep("policy_index", range(len(POLICIES)))
    quantities = {
        metric: (lambda i, metric=metric: schedule_metrics(scheduled(i))[metric])
        for metric in SCHEDULE_METRICS
    }
    result = executor.run(plan, quantities)
    return {policy: scheduled(i) for i, policy in enumerate(POLICIES)}, result


def test_ext1_energy_token_scheduling(tech, benchmark, executor):
    results, plan_result = benchmark(build_figure, tech, executor)

    rows = []
    for index, policy in enumerate(POLICIES):
        at = {metric: plan_result.series(metric).value_at(index)
              for metric in SCHEDULE_METRICS}
        rows.append([policy.value, int(at["runs"]), at["total_value"],
                     at["energy_offered"], at["energy_spent"],
                     at["energy_utilisation"], int(at["missed_deadlines"]),
                     " ".join(results[policy].unfinished_tasks) or "-"])
    emit(format_table(
        "EXT1 — sensor-node workload over a bursty harvest, by policy",
        ["policy", "runs", "value", "offered", "spent", "utilisation",
         "missed deadlines", "unfinished"],
        rows, unit_hints=["", "", "", "J", "J", "", "", ""]))

    frugal = results[SchedulingPolicy.VALUE_PER_ENERGY]
    fifo = results[SchedulingPolicy.FIFO]
    # Energy conservation holds under every policy.
    for result in results.values():
        assert result.energy_spent <= result.energy_offered + 1e-15
        assert 0.0 <= result.energy_utilisation <= 1.0
    # Scheduling to the power profile pays: the frugal policy extracts at
    # least as much value from the same energy as naive FIFO.
    assert frugal.total_value >= fifo.total_value
    assert frugal.value_per_joule >= fifo.value_per_joule
    # The schedule is actually exercised: every policy runs work, and the
    # energy banked between bursts is bounded by the storage capacity.
    assert all(len(result.runs) > 0 for result in results.values())
    assert all(result.energy_left_stored <= STORAGE_CAPACITY + 1e-12
               for result in results.values())
    # The plan's quantities agree with the memoised runs themselves.
    assert plan_result.series("total_value").value_at(
        POLICIES.index(SchedulingPolicy.FIFO)) == fifo.total_value
