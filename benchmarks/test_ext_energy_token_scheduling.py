"""EXT1 — Task scheduling based on the energy-token model (reference [15]).

Section IV points to energy-token Petri nets and task scheduling "according
to the power profile" as the system-level half of energy-modulated computing.
The benchmark schedules a sensor-node workload (sense → filter → log /
transmit) against a bursty harvested-energy profile under four policies and
prints the value each policy extracts from the same energy.  The
energy-frugal (value-per-energy) policy must extract at least as much value
as FIFO, and no policy may spend more energy than was harvested.
"""

from repro.analysis.report import format_table
from repro.core.scheduler import SchedulingPolicy, Task, compare_policies

from conftest import emit


def sensor_node_workload():
    return [
        Task("sense", energy=2e-9, duration=1, value=1.0, periodic_every=4),
        Task("filter", energy=4e-9, duration=1, value=2.0, depends_on=("sense",)),
        Task("log", energy=1e-9, duration=1, value=0.5, depends_on=("filter",)),
        Task("compress", energy=8e-9, duration=2, value=3.0,
             depends_on=("filter",)),
        Task("transmit", energy=30e-9, duration=2, value=10.0,
             depends_on=("compress",), deadline=30),
        Task("housekeeping", energy=0.5e-9, duration=1, value=0.2,
             periodic_every=8),
    ]


def bursty_profile(slots=40):
    """A harvester that alternates droughts with short energetic bursts."""
    profile = []
    for slot in range(slots):
        if slot % 8 in (0, 1):
            profile.append(12e-9)
        elif slot % 8 == 4:
            profile.append(4e-9)
        else:
            profile.append(1e-9)
    return profile


def run_policies(_tech):
    return compare_policies(sensor_node_workload(), bursty_profile(),
                            joules_per_token=0.5e-9,
                            storage_capacity=40e-9)


def test_ext1_energy_token_scheduling(tech, benchmark):
    results = benchmark(run_policies, tech)

    rows = []
    for policy, result in results.items():
        rows.append([policy.value, len(result.runs), result.total_value,
                     result.energy_offered, result.energy_spent,
                     result.energy_utilisation,
                     len(result.missed_deadlines),
                     " ".join(result.unfinished_tasks) or "-"])
    emit(format_table(
        "EXT1 — sensor-node workload over a bursty harvest, by policy",
        ["policy", "runs", "value", "offered", "spent", "utilisation",
         "missed deadlines", "unfinished"],
        rows, unit_hints=["", "", "", "J", "J", "", "", ""]))

    frugal = results[SchedulingPolicy.VALUE_PER_ENERGY]
    fifo = results[SchedulingPolicy.FIFO]
    # Energy conservation holds under every policy.
    for result in results.values():
        assert result.energy_spent <= result.energy_offered + 1e-15
        assert 0.0 <= result.energy_utilisation <= 1.0
    # Scheduling to the power profile pays: the frugal policy extracts at
    # least as much value from the same energy as naive FIFO.
    assert frugal.total_value >= fifo.total_value
    assert frugal.value_per_joule >= fifo.value_per_joule
    # The schedule is actually exercised: every policy runs work, and the
    # energy banked between bursts is bounded by the storage capacity.
    assert all(len(result.runs) > 0 for result in results.values())
    assert all(result.energy_left_stored <= 40e-9 + 1e-12
               for result in results.values())
