"""Batched-quantity speedups on the hottest Monte-Carlo figure kernels.

The batched-quantity protocol (:func:`repro.analysis.runner.batched`)
lets the executor evaluate a whole shard as one numpy pass instead of one
Python call per point.  These benchmarks quantify the win on the two
figure kernels with real arithmetic behind them — the Fig. 7 SI SRAM
write-latency chain (whose Fig. 5 bit-line calibration re-solves an
80-iteration bisection per perturbed sample) and the Fig. 9
charge-to-code drain loop — plus the Fig. 8-style rail sweep of the
converter.

Every test asserts the batched values are *bit-identical* to the
per-point fallback of the same quantity (``Executor(batch=False)``), and
the Monte-Carlo ones additionally record the measured speedup in the
pytest-benchmark ``extra_info``, which lands in the CI ``BENCH_ci.json``
artifact where ``scripts/check_batched_speedup.py`` enforces the >= 10x
floor.
"""

import time

import pytest

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan, Executor, batched
from repro.models.technology import get_technology
from repro.sensors.batch import predicted_counts
from repro.sensors.charge_to_digital import ChargeToDigitalConverter
from repro.sram.batch import si_write_latency
from repro.sram.sram import SRAMConfig, SpeedIndependentSRAM

from conftest import emit

#: Fig. 7 array at the depleted-rail operating point.
SRAM_CONFIG = SRAMConfig(rows=16, columns=8, calibrate_energy=False)
LOW_VDD = 0.25
WRITE_MC_SAMPLES = 256

#: Fig. 9 converter: a small capacitor keeps the drain loop short.
SAMPLING_CAP = 2e-12
SAMPLED_VDD = 0.55
COUNT_MC_SAMPLES = 64

#: Fig. 8-style rail sweep of the same converter.
SWEEP_VDDS = [0.35 + 0.0075 * i for i in range(48)]


def _mc_write_quantity():
    return batched(lambda batch: si_write_latency(batch, SRAM_CONFIG, LOW_VDD))


def _mc_count_quantity():
    return batched(lambda batch: predicted_counts(
        batch, SAMPLED_VDD, sampling_capacitance=SAMPLING_CAP))


def _timed_pair(plan, quantity, benchmark):
    """Benchmark the batched path; time the per-point path once."""
    result_batched = benchmark(
        lambda: Executor().run(plan, {"value": quantity}))
    start = time.perf_counter()
    result_serial = Executor(batch=False).run(plan, {"value": quantity})
    serial_s = time.perf_counter() - start
    batched_s = benchmark.stats.stats.min
    speedup = serial_s / batched_s
    benchmark.extra_info["per_point_s"] = serial_s
    benchmark.extra_info["batched_s"] = batched_s
    benchmark.extra_info["speedup_vs_per_point"] = speedup
    return result_batched, result_serial, speedup


def test_fig07_write_latency_mc_batched_speedup(tech, benchmark):
    plan = ExperimentPlan.monte_carlo(WRITE_MC_SAMPLES, technology=tech,
                                      seed=7)
    result_batched, result_serial, speedup = _timed_pair(
        plan, _mc_write_quantity(), benchmark)

    values = result_batched.values["value"]
    emit(format_table(
        "FIG7 kernel — Monte-Carlo write latency, batched vs per-point",
        ["samples", "min", "max", "speedup"],
        [[WRITE_MC_SAMPLES, min(values), max(values), f"{speedup:.1f}x"]],
        unit_hints=["", "s", "s", ""]))

    assert result_batched.provenance.executor.startswith("batched[")
    assert result_batched.values == result_serial.values
    # The vectorised chain agrees with the scalar model it mirrors.
    nominal = SpeedIndependentSRAM(tech, SRAM_CONFIG).write_latency(LOW_VDD)
    unperturbed = Executor().run(
        ExperimentPlan.monte_carlo(1, technology=tech, seed=7, sigma_vth=0.0,
                                   sigma_drive=0.0, sigma_leak=0.0),
        {"value": _mc_write_quantity()}).values["value"][0]
    assert unperturbed == pytest.approx(nominal, rel=1e-9)
    assert speedup >= 10.0


def test_fig09_predicted_count_mc_batched_speedup(tech, benchmark):
    plan = ExperimentPlan.monte_carlo(COUNT_MC_SAMPLES, technology=tech,
                                      seed=9)
    result_batched, result_serial, speedup = _timed_pair(
        plan, _mc_count_quantity(), benchmark)

    counts = result_batched.values["value"]
    emit(format_table(
        "FIG9 kernel — Monte-Carlo predicted counts, batched vs per-point",
        ["samples", "min count", "max count", "speedup"],
        [[COUNT_MC_SAMPLES, int(min(counts)), int(max(counts)),
          f"{speedup:.1f}x"]],
        unit_hints=["", "", "", ""]))

    assert result_batched.provenance.executor.startswith("batched[")
    assert result_batched.values == result_serial.values
    # The closed form agrees with the converter's own prediction.
    converter = ChargeToDigitalConverter(technology=tech,
                                         sampling_capacitance=SAMPLING_CAP)
    assert predicted_counts(tech, SAMPLED_VDD,
                            sampling_capacitance=SAMPLING_CAP)[0] == float(
        converter.predicted_count(SAMPLED_VDD))
    assert speedup >= 10.0


def test_fig08_rail_sweep_batched(tech, benchmark):
    quantity = batched(lambda vdds: predicted_counts(
        tech, vdds, sampling_capacitance=SAMPLING_CAP))
    plan = ExperimentPlan.sweep("sampled_vdd", SWEEP_VDDS)
    result = benchmark(lambda: Executor().run(plan, {"count": quantity}))

    assert result.provenance.executor.startswith("batched[")
    serial = Executor(batch=False).run(plan, {"count": quantity})
    assert result.values == serial.values
    counts = result.values["count"]
    # More sampled charge -> monotonically non-decreasing code.
    assert all(a <= b for a, b in zip(counts, counts[1:]))
    assert counts[-1] > counts[0]
