"""FIG4 — 2-bit dual-rail counter operating from an AC supply.

The paper demonstrates (Cadence waveforms, Fig. 4) a 2-bit sequential
dual-rail asynchronous counter running correctly from an AC supply of
200 mV ± 100 mV at 1 MHz: "The self-timed logic of this counter with
completion detection is robust to power supply variations."  The benchmark
re-runs that experiment on the event-driven model: the counter is driven
through a 4-phase handshake while the rail swings between 100 mV (well below
the functional minimum) and 300 mV, and the emitted count sequence must be
exactly the modulo-4 up-count — the supply may only stretch the handshake,
never corrupt it.
"""

from repro.analysis.report import format_table
from repro.power.supply import ACSupply, ConstantSupply
from repro.selftimed.counter import DualRailCounter
from repro.sim.simulator import Simulator

from conftest import emit

STEPS = 12


def drive(sim, counter, steps, handshake_gap=0.5e-9):
    """4-phase environment: req toggles on the counter's ack edges."""
    state = {"steps_left": steps}

    def on_ack(signal, value, time):
        if value:
            sim.schedule_signal(counter.req, False, handshake_gap)
        elif state["steps_left"] > 0:
            state["steps_left"] -= 1
            sim.schedule_signal(counter.req, True, handshake_gap)

    counter.ack.subscribe(on_ack)
    state["steps_left"] -= 1
    sim.schedule_signal(counter.req, True, handshake_gap)


def run_counter(tech, supply):
    sim = Simulator()
    counter = DualRailCounter(sim, supply, tech, width=2)
    drive(sim, counter, STEPS)
    sim.run_until_idle(max_time=1.0)
    # Completion time of the last handshake (the run may idle afterwards).
    finish_time = counter.ack.last_change_time
    return sim, counter, finish_time


def test_fig04_dualrail_counter_under_ac_supply(tech, benchmark):
    ac_supply = ACSupply(offset=0.2, amplitude=0.1, frequency=1e6)
    sim_ac, counter_ac, finish_ac = benchmark(run_counter, tech, ac_supply)
    sim_dc, counter_dc, finish_dc = run_counter(tech, ConstantSupply(1.0))

    emit(format_table(
        "FIG4 — 2-bit dual-rail counter, 12 handshake steps",
        ["supply", "values emitted", "sequence correct", "stalls",
         "total time", "energy"],
        [["AC 200mV±100mV @ 1MHz",
          " ".join(str(v) for v in counter_ac.values_emitted),
          counter_ac.sequence_is_correct(),
          counter_ac.stall_count,
          finish_ac, counter_ac.energy_consumed],
         ["DC 1.0 V",
          " ".join(str(v) for v in counter_dc.values_emitted),
          counter_dc.sequence_is_correct(),
          counter_dc.stall_count,
          finish_dc, counter_dc.energy_consumed]],
        unit_hints=["", "", "", "", "s", "J"]))

    # The paper's claim: the count sequence is correct despite the AC rail.
    assert counter_ac.sequence_is_correct()
    assert len(counter_ac.values_emitted) == STEPS
    assert counter_ac.values_emitted == counter_ac.expected_sequence(STEPS)
    # The AC-supplied run is much slower than the 1 V run and had to wait out
    # the sub-threshold troughs, but lost nothing.
    assert finish_ac > 5 * finish_dc
    assert counter_dc.sequence_is_correct()
