"""FIG4 — 2-bit dual-rail counter operating from an AC supply.

The paper demonstrates (Cadence waveforms, Fig. 4) a 2-bit sequential
dual-rail asynchronous counter running correctly from an AC supply of
200 mV ± 100 mV at 1 MHz: "The self-timed logic of this counter with
completion detection is robust to power supply variations."  The benchmark
re-runs that experiment on the event-driven model: the counter is driven
through a 4-phase handshake while the rail swings between 100 mV (well below
the functional minimum) and 300 mV, and the emitted count sequence must be
exactly the modulo-4 up-count — the supply may only stretch the handshake,
never corrupt it.

The AC-versus-DC comparison is declared as an :class:`ExperimentPlan` over
the ``supply_mode`` axis (0 = the paper's AC rail, 1 = a steady 1 V rail);
each point is one run of
:func:`repro.selftimed.counter.run_dualrail_scenario`.
"""

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentPlan
from repro.power.supply import ACSupply, ConstantSupply
from repro.selftimed.counter import COUNTER_RUN_METRICS, run_dualrail_scenario

from conftest import emit

STEPS = 12
#: Plan axis: 0 = AC 200 mV ± 100 mV @ 1 MHz, 1 = DC 1.0 V.
SUPPLY_MODES = [0.0, 1.0]


def make_supply(mode):
    if round(mode) == 0:
        return ACSupply(offset=0.2, amplitude=0.1, frequency=1e6)
    return ConstantSupply(1.0)


def build_figure(tech, executor):
    # One driven counter run per supply condition, memoised so the five
    # quantities of a point share a single event-driven simulation.
    runs = {}

    def scenario(mode):
        key = round(mode)
        if key not in runs:
            runs[key] = run_dualrail_scenario(tech, make_supply(mode), STEPS)
        return runs[key]

    plan = ExperimentPlan.sweep("supply_mode", SUPPLY_MODES)
    quantities = {
        metric: (lambda mode, metric=metric: scenario(mode).metrics()[metric])
        for metric in COUNTER_RUN_METRICS
    }
    result = executor.run(plan, quantities)
    return scenario(0.0), scenario(1.0), result


def test_fig04_dualrail_counter_under_ac_supply(tech, benchmark, executor):
    ac_run, dc_run, result = benchmark(build_figure, tech, executor)

    def row(name, run, mode):
        return [name,
                " ".join(str(v) for v in run.values_emitted),
                bool(result.series("sequence_correct").value_at(mode)),
                int(result.series("stalls").value_at(mode)),
                result.series("finish_time").value_at(mode),
                result.series("energy").value_at(mode)]

    emit(format_table(
        "FIG4 — 2-bit dual-rail counter, 12 handshake steps",
        ["supply", "values emitted", "sequence correct", "stalls",
         "total time", "energy"],
        [row("AC 200mV±100mV @ 1MHz", ac_run, 0.0),
         row("DC 1.0 V", dc_run, 1.0)],
        unit_hints=["", "", "", "", "s", "J"]))

    # The paper's claim: the count sequence is correct despite the AC rail.
    assert ac_run.sequence_correct
    assert len(ac_run.values_emitted) == STEPS
    assert ac_run.values_emitted == ac_run.expected
    assert result.series("sequence_correct").value_at(0.0) == 1.0
    assert result.series("steps_emitted").value_at(0.0) == float(STEPS)
    # The AC-supplied run is much slower than the 1 V run and had to wait out
    # the sub-threshold troughs, but lost nothing.
    finish = result.series("finish_time")
    assert finish.value_at(0.0) > 5 * finish.value_at(1.0)
    assert dc_run.sequence_correct
